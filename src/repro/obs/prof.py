"""Continuous profiling: wall-clock sampling, critical path, contention.

PR 5 showed the conflict-relation lookup is the hot path and PR 7's
spans say what happened per transaction — this module answers the two
questions neither does: *where does the process spend its wall-clock
time* and *which phase (or conflict pair) gates the latency tail*.
Three independent pieces, all zero-dependency:

**Sampling profiler** — :class:`SamplingProfiler` runs a background
thread that snapshots every Python thread's stack via
``sys._current_frames()`` at a configurable rate.  Aggregation is a
deterministic fold (:class:`StackAggregator`): identical stacks merge
into one counter, output ordering is lexicographic, so two dumps of the
same sample multiset are byte-identical.  Output is the collapsed-stack
``.folded`` format FlameGraph's ``flamegraph.pl`` consumes directly,
plus a tagged-codec JSON dump for machine consumers.

**Critical-path analyzer** — :func:`critical_path` folds
:class:`~repro.obs.spans.Span` objects into a per-transaction *gating
phase* (the largest of ``client``/``queue``/``execute``/``respond``
wire phases and the machine's ``lock-wait`` time), aggregate p50/p99
budgets per phase, and coz-lite what-if estimates: "if ``execute`` were
free, p99 would drop to X", computed by re-ranking each span's total
with that phase subtracted.  The what-if numbers are *upper bounds* on
the win (phases overlap-free per span by construction, but removing a
phase in real life shifts queueing), which is exactly the caveat Coz
makes for virtual speedups.

**Contention profiler** — :func:`contention_profile` attributes blocked
time to ``(object, operation-pair, relation)`` triples from the
``lock.conflict`` / ``lock.block`` / ``lock.wait`` event stream, using
the same interval-ending-in-a-blocked-event convention as the span
builder's ``blocked`` tally.  The ranking it produces — which conflict
pairs cost the most wall-clock wait — is the target list ROADMAP item
4's conflict-relation compiler needs (per Malta & Martinez, the win
from finer relations is bounded; measure where the remaining time goes
before compiling anything).

Everything here works offline: ``repro profile`` renders dumps,
``repro analyze`` embeds the critical-path and contention sections in
its postmortem, and ``repro bench serve`` ships the phase budget inside
``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import Counter as _Counter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .codec import decode_value, encode_value
from .events import TraceEvent
from .spans import Span

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "StackAggregator",
    "SamplingProfiler",
    "critical_path",
    "contention_profile",
    "write_profile",
    "read_profile",
    "render_profile",
    "render_critical_path",
    "render_contention",
]

PROFILE_SCHEMA_VERSION = 1

#: End-to-end phases the critical-path analyzer attributes, in wall
#: order.  The four wire phases come from ``Span.phases``; ``lock-wait``
#: is the machine's ``blocked`` tally (time paid to concurrency
#: control), kept separate because it is the one phase a finer conflict
#: relation can shrink.
CRITICAL_PHASES = ("client", "queue", "execute", "respond", "lock-wait")

#: Blocked-interval event kinds, mirrored from the span builder.
_BLOCKED_KINDS = frozenset({"lock.conflict", "lock.block", "lock.wait"})
_TERMINAL_KINDS = frozenset({"txn.commit", "txn.abort"})


# ----------------------------------------------------------------------
# Deterministic collapsed-stack aggregation
# ----------------------------------------------------------------------


class StackAggregator:
    """Fold sampled stacks into deterministic collapsed-stack counts.

    A *stack* is a tuple of frame labels, root first (the format
    ``flamegraph.pl`` wants).  Aggregation is pure bookkeeping, so tests
    can drive it with synthetic frames and assert exact output; the
    sampler feeds it live frames.
    """

    def __init__(self, max_depth: int = 64):
        self.max_depth = max_depth
        self.counts: _Counter = _Counter()
        #: Total stacks added (== sum of counts).
        self.samples = 0
        #: Stacks whose depth exceeded ``max_depth`` (root-truncated).
        self.truncated = 0

    def add(self, stack: Sequence[str], count: int = 1) -> None:
        """Record one sampled stack (root-first frame labels)."""
        frames = tuple(stack)
        if len(frames) > self.max_depth:
            # Keep the leaf end: the hot frame is what the flamegraph
            # reader looks for; the lost root frames are boilerplate.
            frames = ("<truncated>",) + frames[-self.max_depth:]
            self.truncated += count
        self.counts[frames] += count
        self.samples += count

    def add_frame(self, leaf_frame: Any, root_label: Optional[str] = None) -> None:
        """Walk a live frame object leaf→root and record the stack."""
        frames: List[str] = []
        frame = leaf_frame
        while frame is not None:
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            frames.append(f"{module}.{code.co_name}")
            frame = frame.f_back
        frames.reverse()
        if root_label is not None:
            frames.insert(0, root_label)
        self.add(frames)

    def folded_lines(self) -> List[str]:
        """Collapsed-stack lines, sorted lexicographically (stable)."""
        return [
            ";".join(frames) + f" {count}"
            for frames, count in sorted(self.counts.items())
        ]

    def folded(self) -> str:
        """The full ``.folded`` document (one stack per line)."""
        return "\n".join(self.folded_lines()) + ("\n" if self.counts else "")

    def stacks(self) -> List[Tuple[str, int]]:
        """``(collapsed_stack, count)`` rows, sorted by stack."""
        return [
            (";".join(frames), count)
            for frames, count in sorted(self.counts.items())
        ]

    def frame_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-frame ``self`` (leaf) and ``total`` (anywhere) counts."""
        totals: Dict[str, Dict[str, int]] = {}
        for frames, count in self.counts.items():
            seen = set()
            for frame in frames:
                row = totals.setdefault(frame, {"self": 0, "total": 0})
                if frame not in seen:
                    row["total"] += count
                    seen.add(frame)
            if frames:
                totals[frames[-1]]["self"] += count
        return totals


# ----------------------------------------------------------------------
# The sampling wall-clock profiler
# ----------------------------------------------------------------------


class SamplingProfiler:
    """Low-overhead wall-clock sampler over ``sys._current_frames()``.

    A daemon thread wakes ``hz`` times per second, snapshots every
    thread's current frame, and folds each stack into a
    :class:`StackAggregator` (its own thread is excluded — the profiler
    never profiles itself).  The sampled threads pay nothing between
    samples; each sample briefly holds the GIL while the frame dict is
    built, which is why the overhead guard in
    ``benchmarks/check_overhead.py`` pins the cost below 5%.

    Parameters
    ----------
    hz:
        Target samples per second (default 87 — deliberately not a
        round divisor of common timer frequencies, the classic
        anti-lockstep choice).
    max_depth:
        Stack depth cap per sample; deeper stacks keep their leaf end.
    clock:
        Monotonic clock used for the duration bookkeeping (injectable
        for tests).
    frames:
        Zero-argument callable returning ``{thread_ident: frame}``
        (injectable for tests; defaults to ``sys._current_frames``).
    """

    def __init__(
        self,
        hz: float = 87.0,
        max_depth: int = 64,
        clock: Callable[[], float] = time.monotonic,
        frames: Callable[[], Mapping[int, Any]] = sys._current_frames,
    ):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = hz
        self.interval = 1.0 / hz
        self.aggregator = StackAggregator(max_depth=max_depth)
        self._clock = clock
        self._frames = frames
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at: Optional[float] = None
        #: Accumulated sampling wall time across start/stop cycles.
        self.duration = 0.0
        #: Sampling rounds taken (each round may record several threads).
        self.rounds = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Spawn the sampler thread (idempotent while running)."""
        if self.running:
            return
        self._stop.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sampler thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        if self._started_at is not None:
            self.duration += self._clock() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- sampling ------------------------------------------------------

    def sample_once(self, frames: Optional[Mapping[int, Any]] = None) -> int:
        """Take one sampling round; returns the stacks recorded.

        Tests call this directly with a synthetic frame mapping; the
        sampler thread calls it with the live ``sys._current_frames()``
        snapshot.  The sampler's own thread is always excluded.
        """
        if frames is None:
            frames = self._frames()
        own = self._thread.ident if self._thread is not None else None
        names = {
            thread.ident: thread.name for thread in threading.enumerate()
        }
        recorded = 0
        for ident in sorted(frames):
            if ident == own:
                continue
            label = f"thread:{names.get(ident, ident)}"
            self.aggregator.add_frame(frames[ident], root_label=label)
            recorded += 1
        self.rounds += 1
        return recorded

    # -- output --------------------------------------------------------

    @property
    def samples(self) -> int:
        """Total stacks recorded across all rounds."""
        return self.aggregator.samples

    def folded(self) -> str:
        """The collapsed-stack document (``flamegraph.pl`` input)."""
        return self.aggregator.folded()

    def status(self) -> Dict[str, Any]:
        """JSON-friendly sampler state (for the in-band ``stats`` op)."""
        return {
            "running": self.running,
            "hz": self.hz,
            "rounds": self.rounds,
            "samples": self.samples,
            "truncated": self.aggregator.truncated,
            "duration_seconds": self.duration,
        }

    def as_dict(self) -> Dict[str, Any]:
        """The sampler section of a profile JSON dump."""
        return {
            "hz": self.hz,
            "rounds": self.rounds,
            "samples": self.samples,
            "truncated": self.aggregator.truncated,
            "duration_seconds": self.duration,
            "stacks": [list(row) for row in self.aggregator.stacks()],
        }


# ----------------------------------------------------------------------
# Critical-path analysis over spans
# ----------------------------------------------------------------------


def _percentile(ranked: Sequence[float], fraction: float) -> float:
    """Deterministic nearest-rank percentile over a sorted sequence."""
    if not ranked:
        return 0.0
    index = min(len(ranked) - 1, int(len(ranked) * fraction))
    return ranked[index]


def _span_budget(span: Span) -> Dict[str, float]:
    """One span's per-phase budget (seconds), wire phases + lock-wait."""
    budget = {
        phase: float(span.phases.get(phase, 0.0))
        for phase in ("client", "queue", "execute", "respond")
    }
    budget["lock-wait"] = float(span.blocked)
    return budget


def gating_phase(span: Span) -> Optional[str]:
    """The phase that dominates one span's budget (None: no budget).

    Ties break toward the earliest phase in :data:`CRITICAL_PHASES`, so
    the answer is deterministic for equal budgets.
    """
    budget = _span_budget(span)
    best: Optional[str] = None
    best_value = 0.0
    for phase in CRITICAL_PHASES:
        value = budget[phase]
        if value > best_value:
            best, best_value = phase, value
    return best


def critical_path(spans: Iterable[Span], scale: float = 1.0) -> Dict[str, Any]:
    """Fold spans into the phase-budget / gating-phase / what-if report.

    ``scale`` multiplies every latency in the output (pass ``1e3`` for
    milliseconds in artifacts).  The what-if numbers re-rank each span's
    total with one phase zeroed — a virtual speedup in the Coz sense:
    an upper bound on the p99 win from making that phase free.
    """
    spans = list(spans)
    budgets = [_span_budget(span) for span in spans]
    totals = [sum(budget.values()) for budget in budgets]
    gating: _Counter = _Counter()
    attributed = 0
    for span, total in zip(spans, totals):
        if total <= 0.0:
            continue
        phase = gating_phase(span)
        if phase is not None:
            gating[phase] += 1
            attributed += 1
    phase_budget: Dict[str, Dict[str, float]] = {}
    for phase in CRITICAL_PHASES:
        values = sorted(budget[phase] for budget in budgets)
        phase_budget[phase] = {
            "p50": _percentile(values, 0.50) * scale,
            "p99": _percentile(values, 0.99) * scale,
            "total": sum(values) * scale,
        }
    ranked_totals = sorted(totals)
    p99_total = _percentile(ranked_totals, 0.99)
    what_if: Dict[str, Dict[str, float]] = {}
    for phase in CRITICAL_PHASES:
        without = sorted(
            total - budget[phase] for total, budget in zip(totals, budgets)
        )
        p99_without = _percentile(without, 0.99)
        what_if[phase] = {
            "p99_without": p99_without * scale,
            "p99_drop": max(0.0, p99_total - p99_without) * scale,
        }
    return {
        "spans": len(spans),
        "attributed": attributed,
        "attributed_fraction": (attributed / len(spans)) if spans else 0.0,
        "gating": {
            phase: gating[phase] for phase in CRITICAL_PHASES if gating[phase]
        },
        "phase_budget": phase_budget,
        "total": {
            "p50": _percentile(ranked_totals, 0.50) * scale,
            "p99": p99_total * scale,
        },
        "what_if": what_if,
    }


# ----------------------------------------------------------------------
# Contention attribution over lock events
# ----------------------------------------------------------------------


def contention_profile(
    events: Iterable[TraceEvent], top: int = 10
) -> Dict[str, Any]:
    """Attribute blocked time to ``(object, op-pair, relation)`` triples.

    Uses the span builder's convention: the interval between a
    transaction's previous event and a ``lock.conflict`` /
    ``lock.block`` / ``lock.wait`` is time that transaction paid to
    concurrency control, attributed to the conflict the event names.
    ``lock.wait`` events carry no pair, so they inherit the
    transaction's most recent conflict attribution.  The ranking (wait
    time first) is the compiler target list: the pairs a finer relation
    would need to split to buy back the most latency.
    """
    last_ts: Dict[str, float] = {}
    last_key: Dict[str, Tuple[str, str, str]] = {}
    rows: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    total_events = 0
    total_blocked = 0.0

    def charge(key: Tuple[str, str, str], interval: float) -> None:
        row = rows.setdefault(key, {"events": 0, "blocked_time": 0.0})
        row["events"] += 1
        row["blocked_time"] += interval

    for event in events:
        transaction = event.data.get("transaction")
        if transaction is None:
            continue
        kind = event.kind
        if kind in _BLOCKED_KINDS:
            anchor = last_ts.get(transaction, event.ts)
            interval = max(0.0, event.ts - anchor)
            if kind == "lock.conflict":
                pair = (
                    f"{event.data.get('operation')}/{event.data.get('held')}"
                )
                key = (
                    str(event.data.get("obj")),
                    pair,
                    str(event.data.get("relation")),
                )
            elif kind == "lock.block":
                key = (
                    str(event.data.get("obj")),
                    f"{event.data.get('operation')}/(no legal outcome)",
                    "blocked",
                )
            else:  # lock.wait: inherit the last named conflict, if any
                key = last_key.get(
                    transaction, ("?", "(wait)/(unknown holder)", "wait")
                )
            charge(key, interval)
            last_key[transaction] = key
            total_events += 1
            total_blocked += interval
        elif kind in _TERMINAL_KINDS:
            last_ts.pop(transaction, None)
            last_key.pop(transaction, None)
            continue
        last_ts[transaction] = event.ts

    ranked = sorted(
        rows.items(),
        key=lambda item: (-item[1]["blocked_time"], -item[1]["events"], item[0]),
    )
    return {
        "events": total_events,
        "blocked_time": total_blocked,
        "pairs": len(rows),
        "rows": [
            {
                "object": key[0],
                "pair": key[1],
                "relation": key[2],
                "events": int(row["events"]),
                "blocked_time": row["blocked_time"],
                "share": (
                    row["blocked_time"] / total_blocked if total_blocked else 0.0
                ),
            }
            for key, row in ranked[:top]
        ],
    }


# ----------------------------------------------------------------------
# Dump / load / render
# ----------------------------------------------------------------------


def write_profile(
    directory: str,
    profiler: Optional[SamplingProfiler] = None,
    critical: Optional[Dict[str, Any]] = None,
    contention: Optional[Dict[str, Any]] = None,
    prefix: str = "profile",
) -> List[str]:
    """Write ``<prefix>.folded`` and ``<prefix>.json`` under ``directory``.

    The ``.folded`` file is ``flamegraph.pl`` input; the JSON dump
    carries the sampler stacks plus whichever of the critical-path and
    contention reports were computed (values through the tagged codec,
    like every other obs artifact).  Returns the paths written.
    """
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    if profiler is not None:
        folded_path = os.path.join(directory, f"{prefix}.folded")
        with open(folded_path, "w", encoding="utf-8") as handle:
            handle.write(profiler.folded())
        paths.append(folded_path)
    payload: Dict[str, Any] = {"schema_version": PROFILE_SCHEMA_VERSION}
    if profiler is not None:
        payload["sampler"] = profiler.as_dict()
    if critical is not None:
        payload["critical_path"] = critical
    if contention is not None:
        payload["contention"] = contention
    json_path = os.path.join(directory, f"{prefix}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(encode_value(payload), indent=2, sort_keys=True) + "\n"
        )
    paths.append(json_path)
    return paths


def read_profile(path: str) -> Dict[str, Any]:
    """Load a profile artifact: a ``.json`` dump, a ``.folded`` file, or
    a directory holding ``profile.json`` / ``profile.folded``."""
    if os.path.isdir(path):
        for name in ("profile.json", "profile.folded"):
            candidate = os.path.join(path, name)
            if os.path.isfile(candidate):
                path = candidate
                break
        else:
            raise FileNotFoundError(
                f"no profile.json or profile.folded under {path!r}"
            )
    if path.endswith(".folded"):
        stacks: List[Tuple[str, int]] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                stack, _, count = line.rpartition(" ")
                stacks.append((stack, int(count)))
        samples = sum(count for _, count in stacks)
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "sampler": {"samples": samples, "stacks": [list(s) for s in stacks]},
        }
    with open(path, encoding="utf-8") as handle:
        return decode_value(json.load(handle))


def _aggregator_from(report: Mapping[str, Any]) -> Optional[StackAggregator]:
    sampler = report.get("sampler")
    if not sampler or not sampler.get("stacks"):
        return None
    aggregator = StackAggregator()
    for stack, count in sampler["stacks"]:
        aggregator.add(tuple(stack.split(";")), int(count))
    return aggregator


def _fmt_ms(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value):.3f}ms"


def render_critical_path(
    report: Mapping[str, Any], scale_to_ms: float = 1.0
) -> str:
    """Human-readable critical-path section.

    ``scale_to_ms`` converts the report's latency unit to milliseconds
    (1.0 when the report was built with ``scale=1e3``, 1e3 when it
    holds raw seconds).
    """
    lines: List[str] = []
    spans = report.get("spans", 0)
    attributed = report.get("attributed", 0)
    fraction = report.get("attributed_fraction", 0.0)
    lines.append(
        f"critical path: {attributed}/{spans} spans attributed "
        f"({100.0 * fraction:.1f}%)"
    )
    gating = report.get("gating") or {}
    if gating:
        ranked = sorted(gating.items(), key=lambda item: (-item[1], item[0]))
        lines.append(
            "gating phase: "
            + "  ".join(f"{phase} x{count}" for phase, count in ranked)
        )
    budget = report.get("phase_budget") or {}
    for phase in CRITICAL_PHASES:
        row = budget.get(phase)
        if not row or (row["p50"] == 0.0 and row["p99"] == 0.0):
            continue
        lines.append(
            f"  {phase:>9s}: p50 {_fmt_ms(row['p50'] * scale_to_ms)}  "
            f"p99 {_fmt_ms(row['p99'] * scale_to_ms)}"
        )
    total = report.get("total")
    if total:
        lines.append(
            f"  {'total':>9s}: p50 {_fmt_ms(total['p50'] * scale_to_ms)}  "
            f"p99 {_fmt_ms(total['p99'] * scale_to_ms)}"
        )
    what_if = report.get("what_if") or {}
    ranked_what_if = sorted(
        (
            (phase, row)
            for phase, row in what_if.items()
            if row.get("p99_drop", 0.0) > 0.0
        ),
        key=lambda item: -item[1]["p99_drop"],
    )
    for phase, row in ranked_what_if:
        lines.append(
            f"  what-if {phase} were free: p99 -> "
            f"{_fmt_ms(row['p99_without'] * scale_to_ms)} "
            f"(saves {_fmt_ms(row['p99_drop'] * scale_to_ms)}; upper bound)"
        )
    return "\n".join(lines)


def render_contention(report: Mapping[str, Any]) -> str:
    """Human-readable contention table (blocked time by conflict pair)."""
    lines = [
        f"contention: {report.get('events', 0)} blocked event(s), "
        f"{report.get('blocked_time', 0.0) * 1e3:.3f}ms attributed across "
        f"{report.get('pairs', 0)} pair(s)"
    ]
    rows = report.get("rows") or []
    if not rows:
        lines.append("  (no lock conflicts, blocks, or waits in window)")
        return "\n".join(lines)
    for row in rows:
        lines.append(
            f"  {row['blocked_time'] * 1e3:>10.3f}ms {100.0 * row['share']:>5.1f}%"
            f"  {row['events']:>6d}x  {row['object']}: {row['pair']}"
            f"  [{row['relation']}]"
        )
    return "\n".join(lines)


def render_profile(report: Mapping[str, Any], top: int = 15) -> str:
    """Render a loaded profile artifact (``repro profile``)."""
    lines: List[str] = ["== profile =="]
    sampler = report.get("sampler")
    if sampler:
        hz = sampler.get("hz")
        duration = sampler.get("duration_seconds")
        lines.append(
            f"sampler: {sampler.get('samples', 0)} sample(s)"
            + (f" @ {hz:g}Hz" if hz else "")
            + (f" over {duration:.2f}s" if duration else "")
            + (
                f"  ({sampler['truncated']} truncated)"
                if sampler.get("truncated")
                else ""
            )
        )
        aggregator = _aggregator_from(report)
        if aggregator is not None:
            totals = aggregator.frame_totals()
            samples = aggregator.samples or 1
            ranked = sorted(
                totals.items(),
                key=lambda item: (-item[1]["self"], -item[1]["total"], item[0]),
            )
            lines.append(f"\nhottest frames (self/total of {samples} samples):")
            for frame, row in ranked[:top]:
                lines.append(
                    f"  {row['self']:>7d} {row['total']:>7d}"
                    f"  {100.0 * row['self'] / samples:>5.1f}%  {frame}"
                )
            hot_stacks = sorted(
                aggregator.counts.items(), key=lambda item: (-item[1], item[0])
            )
            lines.append("\nhottest stacks:")
            for frames, count in hot_stacks[:top]:
                lines.append(f"  {count:>7d}  {';'.join(frames)}")
    critical = report.get("critical_path")
    if critical:
        lines.append("")
        # Embedded critical-path reports are stored in milliseconds.
        lines.append(render_critical_path(critical, scale_to_ms=1.0))
    contention = report.get("contention")
    if contention is not None:
        lines.append("")
        lines.append(render_contention(contention))
    return "\n".join(lines) + "\n"
