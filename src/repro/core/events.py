"""Events at the transaction/object interface (paper, Section 2).

Four kinds of events occur at the interface between transactions and
objects:

* invocation events ``<inv, X, P>``,
* response events ``<res, X, P>``,
* commit events ``<commit(t), X, P>`` carrying a commit timestamp, and
* abort events ``<abort, X, P>``.

Commit and abort events are collectively *completion* events.  Every event
involves exactly one object ``X`` and one transaction ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from .operations import Invocation

__all__ = [
    "InvocationEvent",
    "ResponseEvent",
    "CommitEvent",
    "AbortEvent",
    "Event",
    "is_completion",
]


@dataclass(frozen=True)
class InvocationEvent:
    """``<inv, X, P>``: transaction ``P`` invokes an operation of ``X``."""

    transaction: str
    obj: str
    invocation: Invocation

    def __str__(self) -> str:
        return f"<{self.invocation}, {self.obj}, {self.transaction}>"


@dataclass(frozen=True)
class ResponseEvent:
    """``<res, X, P>``: object ``X`` responds to ``P``'s pending invocation."""

    transaction: str
    obj: str
    result: Any

    def __str__(self) -> str:
        return f"<{self.result!r}, {self.obj}, {self.transaction}>"


@dataclass(frozen=True)
class CommitEvent:
    """``<commit(t), X, P>``: ``X`` learns ``P`` committed with timestamp t.

    Timestamps are drawn from a countable totally ordered set; any Python
    values supporting total ordering (ints, floats, tuples) may be used.
    """

    transaction: str
    obj: str
    timestamp: Any

    def __str__(self) -> str:
        return f"<commit({self.timestamp}), {self.obj}, {self.transaction}>"


@dataclass(frozen=True)
class AbortEvent:
    """``<abort, X, P>``: object ``X`` learns that ``P`` aborted."""

    transaction: str
    obj: str

    def __str__(self) -> str:
        return f"<abort, {self.obj}, {self.transaction}>"


Event = Union[InvocationEvent, ResponseEvent, CommitEvent, AbortEvent]


def is_completion(event: Event) -> bool:
    """True for commit and abort events (the paper's completion events)."""
    return isinstance(event, (CommitEvent, AbortEvent))
