"""Commutativity and failure-to-commute (paper, Section 7.1).

Definition 25: two operation sequences are *equivalent* when no future
computation can distinguish them.  Definition 26: operations ``p`` and ``q``
*commute* when for every operation sequence ``h`` with ``h * p`` and
``h * q`` both legal, ``h * p * q`` and ``h * q * p`` are legal and
equivalent.  This is Weihl's notion, covering partial and non-deterministic
operations.

Theorem 28 shows "failure to commute" is a dependency relation — hence the
hybrid protocol instantiated with a commutativity-derived conflict table is
exactly the classic commutativity-based locking baseline, and the hybrid
protocol with a *minimal* dependency relation permits at least as much (and
often strictly more) concurrency.

Checks here are bounded-exhaustive over a finite universe, like the rest of
:mod:`repro.core`.  Sequence equivalence uses reachable-state-set equality,
which is exact for the canonical-state specifications in :mod:`repro.adts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

from .conflict import EnumeratedRelation
from .operations import Operation, OperationSequence
from .specs import SerialSpec, enumerate_legal_with_states

__all__ = [
    "commute",
    "failure_to_commute",
    "CommuteCounterexample",
    "find_commute_counterexample",
]


@dataclass(frozen=True)
class CommuteCounterexample:
    """Witness that ``p`` and ``q`` fail to commute after some ``h``."""

    p: Operation
    q: Operation
    h: OperationSequence
    reason: str

    def __str__(self) -> str:
        rendered = " * ".join(str(x) for x in self.h) or "<empty>"
        return f"{self.p} and {self.q} fail to commute after h = {rendered}: {self.reason}"


def find_commute_counterexample(
    spec: SerialSpec,
    p: Operation,
    q: Operation,
    universe: Sequence[Operation],
    max_h: int = 3,
) -> Optional[CommuteCounterexample]:
    """Bounded search for a Definition 26 violation.

    Explores every legal ``h`` over ``universe`` up to ``max_h`` operations.
    For each ``h`` where both ``h * p`` and ``h * q`` are legal, requires
    ``h * p * q`` and ``h * q * p`` to be legal and to reach identical
    state-sets (equivalence, exact for canonical-state specs).
    """
    for h, states in enumerate_legal_with_states(spec, universe, max_h):
        after_p = spec.step(states, p)
        after_q = spec.step(states, q)
        if not after_p or not after_q:
            continue
        after_pq = spec.step(after_p, q)
        after_qp = spec.step(after_q, p)
        if not after_pq:
            return CommuteCounterexample(p, q, h, "h*p*q is illegal")
        if not after_qp:
            return CommuteCounterexample(p, q, h, "h*q*p is illegal")
        if after_pq != after_qp:
            return CommuteCounterexample(
                p, q, h, "h*p*q and h*q*p are not equivalent"
            )
    return None


def commute(
    spec: SerialSpec,
    p: Operation,
    q: Operation,
    universe: Sequence[Operation],
    max_h: int = 3,
) -> bool:
    """Bounded Definition 26 test: do ``p`` and ``q`` commute?"""
    return find_commute_counterexample(spec, p, q, universe, max_h) is None


def failure_to_commute(
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_h: int = 3,
) -> EnumeratedRelation:
    """Derive the (symmetric) failure-to-commute relation over a universe.

    This is the conflict table a commutativity-based protocol (Weihl,
    Korth, Bernstein et al.) must use; Figure 7-1 is this relation for the
    Account type.  Commutation is symmetric in ``p`` and ``q``, so each
    unordered pair is tested once.
    """
    pairs: Set[Tuple[Operation, Operation]] = set()
    ordered = list(universe)
    for i, p in enumerate(ordered):
        for q in ordered[i:]:
            if not commute(spec, p, q, universe, max_h):
                pairs.add((p, q))
                pairs.add((q, p))
    return EnumeratedRelation(pairs, name=f"failure-to-commute({spec.name})")
