"""Commit-timestamp generation (paper, Sections 1, 3.3, 6).

Transactions are serialized in the order of the timestamps they generate at
commit.  The generation method must satisfy one constraint (Section 3.3):
the timestamp order on committed transactions must be consistent with the
``precedes`` order at each object — if ``Q`` completes an operation at ``X``
after ``P`` commits at ``X``, then ``Q``'s eventual timestamp must exceed
``P``'s.  "This constraint is satisfied by timestamp generation algorithms
based on logical clocks [Lamport], and by algorithms that piggyback
timestamp information on the messages of a commit protocol."

Two generators are provided:

* :class:`MonotoneTimestampGenerator` — a Lamport-style logical clock that
  issues strictly increasing timestamps, so timestamp order equals commit
  order.  Simple and always valid.
* :class:`SkewedTimestampGenerator` — deliberately issues timestamps *out
  of commit order* whenever the constraint allows it (a transaction may
  commit with a timestamp smaller than that of a concurrently-committed
  transaction it never observed).  This exercises the interesting hybrid
  behaviour — e.g. concurrent ``Enq``s dequeued in timestamp order rather
  than commit order — and the timestamp-order merging of Sections 4-6.

Both track, per transaction, the *lower bound* it has accumulated: the
largest commit timestamp it may have observed (the ``bound_tab`` of the
appendix).  Timestamps are integers; the skewed generator leaves gaps so it
can place a later commit between two earlier ones.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Set

__all__ = [
    "TimestampGenerator",
    "MonotoneTimestampGenerator",
    "SkewedTimestampGenerator",
    "LogicalClock",
]


class LogicalClock:
    """A Lamport logical clock over integers.

    ``tick()`` advances and returns a fresh value; ``observe(t)`` merges in
    a timestamp received from elsewhere (the clock never runs behind any
    value it has seen).
    """

    def __init__(self, start: int = 0):
        self._now = start

    @property
    def now(self) -> int:
        """The current clock value."""
        return self._now

    def tick(self) -> int:
        """Advance the clock by one and return the new value."""
        self._now += 1
        return self._now

    def observe(self, timestamp: int) -> None:
        """Merge an externally observed timestamp (Lamport receive rule)."""
        if timestamp > self._now:
            self._now = timestamp


class TimestampGenerator:
    """Interface for commit-timestamp generation.

    The transaction manager reports, via :meth:`observe`, the largest commit
    timestamp a transaction may have seen each time one of its operations
    returns a result; :meth:`commit_timestamp` then produces a timestamp
    strictly greater than that bound, which is exactly the Section 3.3
    constraint.
    """

    def observe(self, transaction: str, committed_timestamp: Any) -> None:
        """Record that ``transaction`` may have observed this commit
        timestamp (it completed an operation at an object where a
        transaction with this timestamp had committed)."""
        raise NotImplementedError

    def commit_timestamp(self, transaction: str) -> Any:
        """Issue a unique timestamp > everything the transaction observed."""
        raise NotImplementedError

    def forget(self, transaction: str) -> None:
        """Drop per-transaction bookkeeping after commit or abort."""
        raise NotImplementedError


class MonotoneTimestampGenerator(TimestampGenerator):
    """Strictly increasing timestamps: timestamp order == commit order.

    Trivially satisfies ``precedes ⊆ TS`` because every new timestamp
    exceeds every previously issued one.
    """

    def __init__(self):
        self._clock = LogicalClock()

    def observe(self, transaction: str, committed_timestamp: Any) -> None:
        self._clock.observe(int(committed_timestamp))

    def commit_timestamp(self, transaction: str) -> int:
        return self._clock.tick()

    def forget(self, transaction: str) -> None:  # no per-transaction state
        return None


class SkewedTimestampGenerator(TimestampGenerator):
    """Issues valid but deliberately out-of-commit-order timestamps.

    Per transaction it tracks the largest commit timestamp observed (its
    lower bound).  On commit it draws a timestamp uniformly from
    ``(bound, high]`` where ``high`` rides ``gap`` positions above the
    largest timestamp issued so far — so a transaction with a small bound
    can commit *below* concurrently committed transactions, which is
    permitted precisely when it never observed them.

    Used by the property tests to confirm the protocol merges intentions in
    timestamp order, not commit order, and by the compaction tests to delay
    the horizon.
    """

    def __init__(self, seed: int = 0, gap: int = 16):
        if gap < 1:
            raise ValueError("gap must be at least 1")
        self._rng = random.Random(seed)
        self._gap = gap
        self._bounds: Dict[str, int] = {}
        self._used: Set[int] = set()
        self._max_issued = 0

    def observe(self, transaction: str, committed_timestamp: Any) -> None:
        current = self._bounds.get(transaction, 0)
        if committed_timestamp > current:
            self._bounds[transaction] = int(committed_timestamp)

    def commit_timestamp(self, transaction: str) -> int:
        low = self._bounds.get(transaction, 0)
        high = max(low + 1, self._max_issued + self._gap)
        candidates = [t for t in range(low + 1, high + 1) if t not in self._used]
        # There is always a free slot because only finitely many are used.
        while not candidates:
            high += self._gap
            candidates = [t for t in range(low + 1, high + 1) if t not in self._used]
        choice = self._rng.choice(candidates)
        self._used.add(choice)
        if choice > self._max_issued:
            self._max_issued = choice
        return choice

    def forget(self, transaction: str) -> None:
        self._bounds.pop(transaction, None)
