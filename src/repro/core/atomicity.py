"""Atomicity, hybrid atomicity, online hybrid atomicity (paper, Section 3).

These are the correctness notions the locking protocol is proved to
satisfy:

* a failure-free history is *serializable in order T* when the equivalent
  serial history ``Serial(H, T)`` is acceptable at every object — i.e. each
  object's projected operation sequence is in its serial specification;
* ``H`` is *atomic* when ``permanent(H) = H | committed(H)`` is serializable
  in some total order;
* ``H`` is *hybrid atomic* when ``permanent(H)`` is serializable in the
  commit-timestamp order ``TS(H)``;
* ``H`` is *online hybrid atomic at X* when for every commit set ``C`` and
  every total order ``T`` consistent with ``Known(H|X)``, ``H|C`` is
  serializable in order ``T`` — the stronger, prefix-friendly property the
  LOCK machine guarantees (Theorem 16).

All checkers brute-force over permutations / commit sets where needed, so
they are meant for verification of small histories in tests and property
checks, not as production validators.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence, Set, Tuple

from .history import History
from .specs import SerialSpec

__all__ = [
    "is_acceptable",
    "is_serializable_in_order",
    "is_serializable",
    "is_atomic",
    "is_hybrid_atomic",
    "is_online_hybrid_atomic",
    "is_online_hybrid_atomic_at",
    "timestamps_respect_precedes",
]

#: Maps object names to their serial specifications.
SpecMap = Mapping[str, SerialSpec]

#: Guard against factorial blow-up in the brute-force enumerations.
_MAX_BRUTE_FORCE = 8


def is_acceptable(history: History, specs: SpecMap) -> bool:
    """Is a serial failure-free history acceptable at every object?

    Acceptable at ``X`` means ``OpSeq(H|X)`` belongs to ``X``'s serial
    specification (Section 3.2).
    """
    if not history.is_serial():
        raise ValueError("acceptability is defined for serial histories")
    if not history.is_failure_free():
        raise ValueError("acceptability is defined for failure-free histories")
    for obj in history.objects():
        spec = specs.get(obj)
        if spec is None:
            raise KeyError(f"no serial specification supplied for object {obj!r}")
        if not spec.is_legal(history.restrict_objects(obj).op_seq()):
            return False
    return True


def is_serializable_in_order(
    history: History, order: Sequence[str], specs: SpecMap
) -> bool:
    """Is the failure-free history serializable in the given total order?"""
    if not history.is_failure_free():
        raise ValueError("serializability is defined for failure-free histories")
    return is_acceptable(history.serial(order), specs)


def is_serializable(history: History, specs: SpecMap) -> bool:
    """Does *some* total order witness serializability of the history?"""
    transactions = history.transactions()
    if len(transactions) > _MAX_BRUTE_FORCE:
        raise ValueError(
            f"brute-force serializability limited to {_MAX_BRUTE_FORCE} transactions"
        )
    return any(
        is_serializable_in_order(history, order, specs)
        for order in itertools.permutations(transactions)
    )


def is_atomic(history: History, specs: SpecMap) -> bool:
    """Is ``permanent(H)`` serializable (Section 3.2)?"""
    return is_serializable(history.permanent(), specs)


def is_hybrid_atomic(history: History, specs: SpecMap) -> bool:
    """Is ``permanent(H)`` serializable in commit-timestamp order?

    ``TS(H)`` totally orders the committed transactions because commit
    timestamps are unique (well-formedness).
    """
    permanent = history.permanent()
    order = history.committed_in_timestamp_order()
    return is_serializable_in_order(permanent, order, specs)


def _commit_sets(history: History) -> Iterator[Set[str]]:
    """All commit sets for H: supersets of committed(H) avoiding aborted(H).

    Only transactions with events in ``H`` matter — adding event-free
    transactions to ``C`` never changes ``H|C``.
    """
    committed = history.committed()
    aborted = history.aborted()
    optional = [t for t in history.transactions() if t not in committed | aborted]
    for r in range(len(optional) + 1):
        for extra in itertools.combinations(optional, r):
            yield committed | set(extra)


def _orders_consistent_with(
    transactions: Sequence[str], constraints: Set[Tuple[str, str]]
) -> Iterator[Tuple[str, ...]]:
    """All total orders on ``transactions`` consistent with ``constraints``."""
    if len(transactions) > _MAX_BRUTE_FORCE:
        raise ValueError(
            f"brute-force order enumeration limited to {_MAX_BRUTE_FORCE} transactions"
        )
    relevant = {
        (a, b)
        for (a, b) in constraints
        if a in transactions and b in transactions
    }
    for perm in itertools.permutations(transactions):
        position = {t: i for i, t in enumerate(perm)}
        if all(position[a] < position[b] for (a, b) in relevant):
            yield perm


def is_online_hybrid_atomic_at(history: History, obj: str, spec: SerialSpec) -> bool:
    """Online hybrid atomicity at one object (Section 3.4).

    For every commit set ``C`` for ``H|X`` and every total order ``T`` on
    ``C`` consistent with ``Known(H|X)``, ``(H|X)|C`` must be serializable
    in order ``T``.
    """
    local = history.restrict_objects(obj)
    known = local.known()
    for commit_set in _commit_sets(local):
        restricted = local.restrict_transactions(commit_set)
        members = [t for t in restricted.transactions()]
        for order in _orders_consistent_with(members, known):
            if not is_serializable_in_order(restricted, order, {obj: spec}):
                return False
    return True


def is_online_hybrid_atomic(history: History, specs: SpecMap) -> bool:
    """Online hybrid atomicity at every object appearing in the history."""
    return all(
        is_online_hybrid_atomic_at(history, obj, specs[obj])
        for obj in history.objects()
    )


def timestamps_respect_precedes(history: History) -> bool:
    """Check the timestamp-generation constraint of Section 3.3.

    Requires ``precedes(H|X) ⊆ TS(H)`` restricted to committed transactions
    for every object ``X``: if Q ran at X after seeing P committed there, Q's
    timestamp must exceed P's.
    """
    stamps = history.timestamps()
    for obj in history.objects():
        for (p, q) in history.restrict_objects(obj).precedes():
            if p in stamps and q in stamps and not stamps[p] < stamps[q]:
                return False
    return True
