"""The LOCK state machine (paper, Section 5.1).

This is a faithful, executable transcription of the automaton the paper
uses to define the hybrid locking protocol for a single object ``X``.  A
state has four components:

* ``pending`` — partial map from transactions to pending invocations;
* ``intentions`` — total map from transactions to operation sequences (the
  operations to apply if the transaction commits; locks are implicit in the
  intentions lists);
* ``committed`` — partial map from transactions to commit timestamps;
* ``aborted`` — the set of aborted transactions.

Invocation, commit, and abort events are inputs with precondition ``True``.
A response event ``<r, X, Q>`` may occur only when (Section 5.1):

1. ``Q`` has a pending invocation,
2. ``Q`` has not completed,
3. the operation (invocation paired with ``r``) is legal in ``Q``'s *view*
   — the committed intentions in timestamp order followed by ``Q``'s own
   intentions, and
4. the operation conflicts with no operation in any other active
   transaction's intentions list.

Theorem 11/16: when ``Conflict`` is a symmetric dependency relation every
accepted history is (online) hybrid atomic.  Theorem 17: when it is not a
dependency relation some accepted history is not online hybrid atomic.  The
machine itself accepts any symmetric relation — the test-suite exercises
both directions.

The machine also records the accepted event sequence so its language
``L(LOCK)`` can be checked against the Section 3 definitions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .conflict import Relation
from .errors import IllegalOperation, LockConflict, ProtocolError, WouldBlock
from .events import AbortEvent, CommitEvent, Event, InvocationEvent, ResponseEvent
from .history import History
from .operations import Invocation, Operation, OperationSequence
from .specs import SerialSpec, StateSet

__all__ = ["LockMachine"]


class LockMachine:
    """Executable LOCK automaton for one object.

    Parameters
    ----------
    spec:
        The object's serial specification.
    conflict:
        A symmetric relation on operations used to test lock conflicts.
        Correct (hybrid atomic) behaviour requires it to be a symmetric
        dependency relation for ``spec``; the machine does not enforce
        this, mirroring Theorem 17's necessity direction.
    obj:
        The object's name as it appears in events.
    view_caching:
        Maintain each transaction's view state-set incrementally (one
        ``spec.step`` per appended operation) instead of replaying the
        whole view on every response check.  The caches are pure
        bookkeeping — ``L(LOCK)`` is unchanged, which the bisimulation
        property suite (``tests/properties/test_incremental_equivalence``)
        certifies by driving a cached and an uncached machine through
        identical workloads.  ``False`` selects the naive replay path
        (the reference implementation, and the benchmark baseline).
    """

    def __init__(
        self,
        spec: SerialSpec,
        conflict: Relation,
        obj: str = "X",
        view_caching: bool = True,
    ):
        self.spec = spec
        self.conflict = conflict
        self.obj = obj
        # State components (Section 5.1).
        self._pending: Dict[str, Invocation] = {}
        self._intentions: Dict[str, OperationSequence] = {}
        self._committed: Dict[str, Any] = {}
        self._aborted: Set[str] = set()
        # Accepted events, for verification.
        self._accepted: List[Event] = []
        # Incremental view bookkeeping (no effect on the accepted
        # language; see ``view_states``).  ``_view_cache`` maps an active
        # transaction to ``(len(intentions), states)`` — the state-set of
        # its view after that many of its own operations — and is only
        # trusted while the committed prefix is unchanged (every change
        # clears it).  ``_committed_cache`` is the state-set denoted by
        # the committed state, or None when it must be recomputed; note
        # an *empty frozenset* is a valid cached value (a Theorem 17
        # relation can drive a view illegal), so staleness is always
        # tested with ``is None``, never truthiness.
        self._view_caching = bool(view_caching)
        self._view_cache: Dict[str, Tuple[int, StateSet]] = {}
        self._committed_cache: Optional[StateSet] = None
        #: Optional :class:`repro.obs.TraceBus`; None keeps every
        #: instrumentation site a single attribute-load-and-compare.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # State observers
    # ------------------------------------------------------------------

    def pending(self, transaction: str) -> Optional[Invocation]:
        """The transaction's pending invocation, if any."""
        return self._pending.get(transaction)

    def intentions(self, transaction: str) -> OperationSequence:
        """``s.intentions(Q)``: operations executed by the transaction."""
        return self._intentions.get(transaction, ())

    def active_intentions(self) -> Dict[str, OperationSequence]:
        """Active transaction → its intentions list, as a fresh map.

        Locks are implicit in the intentions lists (Section 5.1), so this
        *is* the machine's lock table: every operation in an active
        transaction's list is a held lock; completed transactions hold
        nothing.  The returned dict is a copy — introspection tools may
        not alias protocol state.
        """
        completed = self.completed()
        return {
            transaction: operations
            for transaction, operations in self._intentions.items()
            if transaction not in completed
        }

    def commit_timestamp(self, transaction: str) -> Optional[Any]:
        """``s.committed(Q)``: the commit timestamp, or None if active."""
        return self._committed.get(transaction)

    @property
    def committed_transactions(self) -> Dict[str, Any]:
        """Map of committed transactions to their timestamps."""
        return dict(self._committed)

    @property
    def aborted_transactions(self) -> Set[str]:
        """``s.aborted``."""
        return set(self._aborted)

    def completed(self) -> Set[str]:
        """``s.completed = s.aborted ∪ dom(s.committed)``."""
        return self._aborted | set(self._committed)

    def is_active(self, transaction: str) -> bool:
        """True when the transaction has neither committed nor aborted."""
        return transaction not in self.completed()

    def active_transactions(self) -> List[str]:
        """Transactions with recorded steps that have not completed."""
        seen = set(self._intentions) | set(self._pending)
        return sorted(t for t in seen if self.is_active(t))

    def history(self) -> History:
        """The accepted event sequence as a :class:`History`."""
        return History(self._accepted, validate=False)

    # ------------------------------------------------------------------
    # Views (Section 5.1)
    # ------------------------------------------------------------------

    def committed_order(self) -> List[str]:
        """Committed transactions in commit-timestamp order."""
        return sorted(self._committed, key=lambda t: self._committed[t])

    def committed_state(self) -> OperationSequence:
        """Committed intentions concatenated in timestamp order."""
        sequence: List[Operation] = []
        for transaction in self.committed_order():
            sequence.extend(self._intentions.get(transaction, ()))
        return tuple(sequence)

    def view(self, transaction: str) -> OperationSequence:
        """``View(Q, s)``: committed state followed by Q's intentions."""
        return self.committed_state() + self.intentions(transaction)

    def _base_states(self) -> StateSet:
        """What the committed prefix replays from.

        The base machine starts at the specification's initial states;
        the compacting machine (Section 6) overrides this to return its
        version (the state-set of the folded common prefix).
        """
        return self.spec.initial_states()

    def _committed_view_states(self) -> StateSet:
        """State-set denoted by the committed state, cached.

        The cache is advanced incrementally on in-timestamp-order commits
        and replays, dropped on out-of-order commits, and recomputed here
        on demand by replaying the retained committed intentions from
        :meth:`_base_states`.
        """
        cache = self._committed_cache
        if cache is None:
            cache = self.spec.run_from(self._base_states(), self.committed_state())
            if self._view_caching:
                self._committed_cache = cache
        return cache

    def view_states(self, transaction: str) -> StateSet:
        """State-set reached by the transaction's view.

        With ``view_caching`` (the default) the committed prefix's
        state-set is cached and each transaction's view state-set is
        advanced by one ``spec.step`` per appended operation — the shape
        of the paper's appendix (Avalon/C++ Account), where per-
        transaction state is maintained incrementally rather than
        replayed.  Without it, the full view is replayed through the
        specification on every call (the naive reference path).
        """
        if not self._view_caching:
            return self.spec.run_from(self._base_states(), self.view(transaction))
        own = self.intentions(transaction)
        entry = self._view_cache.get(transaction)
        if entry is not None:
            applied, states = entry
            if applied == len(own):
                return states
            if applied < len(own):
                states = self.spec.run_from(states, own[applied:])
                self._view_cache[transaction] = (len(own), states)
                return states
            # An intentions list never shrinks while its cache entry
            # lives (abort/commit/forget drop the entry), so this branch
            # is unreachable; rebuild defensively if it ever isn't.
        states = self.spec.run_from(self._committed_view_states(), own)
        self._view_cache[transaction] = (len(own), states)
        return states

    def _invalidate_views(self, committed_states: Optional[StateSet]) -> None:
        """The committed prefix changed: drop every per-transaction view.

        ``committed_states`` installs the new committed state-set when
        the caller could advance it incrementally (an in-timestamp-order
        commit or replay); None forces a lazy recompute.
        """
        self._view_cache.clear()
        self._committed_cache = committed_states if self._view_caching else None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def invoke(self, transaction: str, invocation: Invocation) -> None:
        """Accept ``<i, X, Q>``; precondition True (input event).

        Well-formedness of the overall history is the caller's duty in the
        formal model; we check the cheap cases to fail fast on misuse.
        """
        if transaction in self._pending:
            raise ProtocolError(
                f"{transaction} already has a pending invocation (well-formedness)"
            )
        if transaction in self._committed:
            raise ProtocolError(
                f"{transaction} cannot invoke after committing (well-formedness)"
            )
        self._pending[transaction] = invocation
        self._accepted.append(InvocationEvent(transaction, self.obj, invocation))
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.invoke",
                transaction=transaction,
                obj=self.obj,
                operation=invocation.name,
                args=invocation.args,
            )
        self._on_event_observed(transaction)

    def can_respond(self, transaction: str, result: Any) -> bool:
        """Evaluate the response event's precondition without acting."""
        try:
            self._check_response(transaction, result)
        except (ProtocolError, IllegalOperation, LockConflict):
            return False
        return True

    def respond(self, transaction: str, result: Any) -> Operation:
        """Accept ``<r, X, Q>`` after checking the four preconditions.

        Raises :class:`ProtocolError`, :class:`IllegalOperation` or
        :class:`LockConflict` when the corresponding precondition fails.
        On success the pending invocation is consumed and the operation is
        appended to the transaction's intentions list.
        """
        operation, stepped = self._check_response_states(transaction, result)
        del self._pending[transaction]
        own = self.intentions(transaction) + (operation,)
        self._intentions[transaction] = own
        if self._view_caching:
            # ``stepped`` is the view state-set after appending the
            # operation, computed against the current committed prefix by
            # the legality check — reuse it instead of re-stepping.
            self._view_cache[transaction] = (len(own), stepped)
        self._accepted.append(ResponseEvent(transaction, self.obj, result))
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "txn.respond",
                transaction=transaction,
                obj=self.obj,
                result=result,
            )
        self._on_event_observed(transaction)
        return operation

    def commit(self, transaction: str, timestamp: Any) -> None:
        """Accept ``<commit(t), X, Q>``; precondition True (input event)."""
        if transaction in self._aborted:
            raise ProtocolError(f"{transaction} already aborted (well-formedness)")
        if transaction in self._pending:
            raise ProtocolError(
                f"{transaction} has a pending invocation (well-formedness)"
            )
        previous = self._committed.get(transaction)
        if previous is not None and previous != timestamp:
            raise ProtocolError(
                f"{transaction} previously committed with timestamp {previous}"
            )
        in_order = True
        for other, stamp in self._committed.items():
            if other != transaction and stamp == timestamp:
                raise ProtocolError(
                    f"timestamp {timestamp} already used by {other} (well-formedness)"
                )
            if timestamp < stamp:
                in_order = False
        advanced: Optional[StateSet] = None
        if in_order and self._view_caching and self._committed_cache is not None:
            # The new timestamp exceeds every retained committed one, so
            # the transaction's intentions *extend* the committed state —
            # advance the cached state-set instead of dropping it.  An
            # out-of-order (skewed) timestamp splices the intentions into
            # the middle of the prefix; that falls back to a recompute.
            advanced = self.spec.run_from(
                self._committed_cache, self.intentions(transaction)
            )
        self._committed[transaction] = timestamp
        self._invalidate_views(advanced)
        self._accepted.append(CommitEvent(transaction, self.obj, timestamp))
        self._on_commit_observed(transaction, timestamp)

    def abort(self, transaction: str) -> None:
        """Accept ``<abort, X, Q>``; precondition True (input event)."""
        if transaction in self._committed:
            raise ProtocolError(f"{transaction} already committed (well-formedness)")
        self._aborted.add(transaction)
        # Aborted intentions were never part of any other view, so only
        # the aborting transaction's cached view dies.
        self._view_cache.pop(transaction, None)
        self._accepted.append(AbortEvent(transaction, self.obj))
        self._on_abort_observed(transaction)

    # ------------------------------------------------------------------
    # Convenience driver
    # ------------------------------------------------------------------

    def execute(self, transaction: str, invocation: Invocation) -> Any:
        """Invoke and respond in one step, choosing a legal result.

        Implements the operational reading of Section 4.1: construct the
        view, choose a result consistent with it, check locks, and either
        append the operation (returning the result) or refuse.  Raises

        * :class:`WouldBlock` when the specification offers no outcome in
          the current view (a partial operation that must wait),
        * :class:`LockConflict` when every legal result is blocked by a
          conflicting lock (the invocation should be retried later),
        * :class:`ProtocolError` on well-formedness misuse.

        On :class:`WouldBlock`/:class:`LockConflict` no event is recorded —
        the attempt leaves the machine unchanged so the caller can retry
        later, matching the informal "the result is discarded, and the
        invocation is later retried".  (In the formal model the invocation
        would stay pending; ``OpSeq`` discards pending invocations, so the
        accepted histories are atomicity-equivalent.)

        When several results are legal and only some are lock-blocked, the
        first non-conflicting result is chosen — a scheduler that "retries
        immediately", permitted because a retried invocation "may return a
        different result".
        """
        if transaction in self._pending:
            raise ProtocolError(
                f"{transaction} already has a pending invocation (well-formedness)"
            )
        if transaction in self.completed():
            raise ProtocolError(f"{transaction} has already completed")
        states = self.view_states(transaction)
        results = self.spec.results_for(states, invocation)
        if not results:
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "lock.block",
                    transaction=transaction,
                    obj=self.obj,
                    operation=invocation.name,
                )
            raise WouldBlock(f"{invocation} has no legal outcome in the view")
        conflict: Optional[LockConflict] = None
        for result in results:
            try:
                self._check_conflicts(transaction, Operation(invocation, result))
            except LockConflict as exc:
                conflict = exc
                continue
            self.invoke(transaction, invocation)
            self.respond(transaction, result)
            return result
        assert conflict is not None
        raise conflict

    # ------------------------------------------------------------------
    # Recovery replay entry points (used by :mod:`repro.recovery`)
    # ------------------------------------------------------------------

    def _committed_states(self) -> StateSet:
        """State-set denoted by the committed state (recovery helper).

        Delegates to the cached committed-prefix state-set, which starts
        from :meth:`_base_states` (the compacting machine's version).
        """
        return self._committed_view_states()

    def replay_committed(
        self, transaction: str, timestamp: Any, intentions: Sequence[Operation]
    ) -> None:
        """Reinstall a committed transaction from a durable intentions log.

        Recovery applies committed intentions lists in commit-timestamp
        order, so at the time of the call ``timestamp`` exceeds every
        retained commit timestamp and the replayed operations extend the
        committed state — legality is exactly hybrid atomicity of the
        pre-crash history, and is re-checked here as a corruption guard.
        No events are recorded: the events happened before the crash.
        """
        ops = tuple(intentions)
        if transaction in self._committed or transaction in self._aborted:
            raise ProtocolError(f"{transaction} already completed; cannot replay")
        for other, stamp in self._committed.items():
            if stamp == timestamp:
                raise ProtocolError(
                    f"timestamp {timestamp} already used by {other} (replay)"
                )
        replayed = self.spec.run_from(self._committed_states(), ops)
        if not replayed:
            raise IllegalOperation(
                f"replayed intentions of {transaction} are illegal after the"
                " committed state; the log or checkpoint is corrupt"
            )
        self._intentions[transaction] = ops
        self._committed[transaction] = timestamp
        # Replay applies commits in timestamp order (see docstring), so
        # the legality check's result *is* the new committed state-set.
        self._invalidate_views(replayed)

    def replay_active(
        self, transaction: str, intentions: Sequence[Operation]
    ) -> None:
        """Reinstall an *active* transaction's intentions (2PC prepared
        state): the operations and the locks they imply come back, but no
        completion is recorded — the coordinator's verdict is still owed.
        """
        ops = tuple(intentions)
        if transaction in self.completed():
            raise ProtocolError(f"{transaction} already completed; cannot replay")
        if not self.spec.run_from(self._committed_states(), ops):
            raise IllegalOperation(
                f"replayed intentions of {transaction} are illegal after the"
                " committed state; the log or checkpoint is corrupt"
            )
        for operation in ops:
            self._check_conflicts(transaction, operation)
            self._intentions[transaction] = self.intentions(transaction) + (
                operation,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_response(self, transaction: str, result: Any) -> Operation:
        return self._check_response_states(transaction, result)[0]

    def _check_response_states(
        self, transaction: str, result: Any
    ) -> Tuple[Operation, StateSet]:
        """Check the response preconditions; also return the stepped view.

        The stepped state-set is the view after appending the operation —
        :meth:`respond` installs it as the transaction's cached view so
        the legality check's work is not repeated.
        """
        invocation = self._pending.get(transaction)
        if invocation is None:
            raise ProtocolError(f"{transaction} has no pending invocation")
        if transaction in self.completed():
            raise ProtocolError(f"{transaction} has already completed")
        operation = Operation(invocation, result)
        states = self.view_states(transaction)
        stepped = self.spec.step(states, operation)
        if not stepped:
            raise IllegalOperation(
                f"{operation} is not legal after the view of {transaction}"
            )
        self._check_conflicts(transaction, operation)
        return operation, stepped

    def _check_conflicts(self, transaction: str, operation: Operation) -> None:
        """Fourth precondition: no conflicting lock held by another active
        transaction (completed transactions hold no locks)."""
        completed = self.completed()
        for other, ops in self._intentions.items():
            if other == transaction or other in completed:
                continue
            for held in ops:
                if self.conflict.related(held, operation) or self.conflict.related(
                    operation, held
                ):
                    tracer = self.tracer
                    if tracer is not None:
                        tracer.emit(
                            "lock.conflict",
                            transaction=transaction,
                            obj=self.obj,
                            operation=str(operation),
                            holder=other,
                            held=str(held),
                            relation=self.conflict.name,
                        )
                    raise LockConflict(
                        f"{operation} conflicts with {held} held by {other}",
                        holder=other,
                        operation=held,
                    )

    # Hooks for the compacting subclass (Section 6 bookkeeping).

    def _on_event_observed(self, transaction: str) -> None:
        """Called after accepting an invocation or response event."""

    def _on_commit_observed(self, transaction: str, timestamp: Any) -> None:
        """Called after accepting a commit event."""

    def _on_abort_observed(self, transaction: str) -> None:
        """Called after accepting an abort event."""
