"""Histories: well-formed sequences of events (paper, Sections 2-3).

A *history* is a well-formed sequence of events.  This module provides the
:class:`History` container plus all of the derived notions the paper builds
on top of histories:

* restriction to objects and transactions (``H|X``, ``H|P``),
* ``committed(H)``, ``aborted(H)``, ``completed(H)``, ``permanent(H)``,
* well-formedness checking (the constraints of Section 2),
* ``OpSeq(H)`` for serial failure-free histories (Section 3.2),
* ``Serial(H, T)`` and history equivalence,
* the ``precedes``, ``TS`` and ``Known`` orders on transactions
  (Sections 3.3-3.4).

:class:`HistoryBuilder` offers a fluent way to transcribe histories such as
the FIFO-queue example of Section 3.2.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .events import AbortEvent, CommitEvent, Event, InvocationEvent, ResponseEvent
from .operations import Invocation, Operation, OperationSequence

__all__ = ["History", "HistoryBuilder", "WellFormednessError"]


class WellFormednessError(ValueError):
    """Raised when a sequence of events violates Section 2's constraints."""


class History:
    """An immutable sequence of events with the paper's derived notions.

    By default construction validates well-formedness; pass
    ``validate=False`` to represent raw event sequences (used internally
    when slicing already-validated histories).
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = (), validate: bool = True):
        self._events: Tuple[Event, ...] = tuple(events)
        if validate:
            check_well_formed(self._events)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return History(self._events[index], validate=False)
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        return "History([" + ", ".join(str(e) for e in self._events) + "])"

    @property
    def events(self) -> Tuple[Event, ...]:
        """The underlying event tuple."""
        return self._events

    def append(self, event: Event, validate: bool = True) -> "History":
        """Return a new history extended by one event."""
        return History(self._events + (event,), validate=validate)

    def prefixes(self) -> Iterator["History"]:
        """Yield every prefix of this history, shortest first."""
        for i in range(len(self._events) + 1):
            yield History(self._events[:i], validate=False)

    # ------------------------------------------------------------------
    # Restriction (H|X, H|P)
    # ------------------------------------------------------------------

    def restrict_objects(self, objects: Iterable[str]) -> "History":
        """``H|X``: the subsequence of events involving the given objects."""
        wanted = set(objects) if not isinstance(objects, str) else {objects}
        return History((e for e in self._events if e.obj in wanted), validate=False)

    def restrict_transactions(self, transactions: Iterable[str]) -> "History":
        """``H|P``: the subsequence of events involving the given transactions."""
        if isinstance(transactions, str):
            wanted = {transactions}
        else:
            wanted = set(transactions)
        return History(
            (e for e in self._events if e.transaction in wanted), validate=False
        )

    # ------------------------------------------------------------------
    # Transaction classification
    # ------------------------------------------------------------------

    def transactions(self) -> List[str]:
        """All transactions appearing in the history, in first-event order."""
        seen: List[str] = []
        for event in self._events:
            if event.transaction not in seen:
                seen.append(event.transaction)
        return seen

    def objects(self) -> List[str]:
        """All objects appearing in the history, in first-event order."""
        seen: List[str] = []
        for event in self._events:
            if event.obj not in seen:
                seen.append(event.obj)
        return seen

    def committed(self) -> Set[str]:
        """``committed(H)``: transactions with a commit event in H."""
        return {e.transaction for e in self._events if isinstance(e, CommitEvent)}

    def aborted(self) -> Set[str]:
        """``aborted(H)``: transactions with an abort event in H."""
        return {e.transaction for e in self._events if isinstance(e, AbortEvent)}

    def completed(self) -> Set[str]:
        """``completed(H) = committed(H) ∪ aborted(H)``."""
        return self.committed() | self.aborted()

    def permanent(self) -> "History":
        """``permanent(H) = H | committed(H)`` (Section 3.2)."""
        return self.restrict_transactions(self.committed())

    def is_failure_free(self) -> bool:
        """True when ``aborted(H)`` is empty."""
        return not self.aborted()

    def timestamps(self) -> Dict[str, Any]:
        """Map each committed transaction to its commit timestamp."""
        stamps: Dict[str, Any] = {}
        for event in self._events:
            if isinstance(event, CommitEvent):
                stamps[event.transaction] = event.timestamp
        return stamps

    # ------------------------------------------------------------------
    # Serial histories and OpSeq (Section 3.2)
    # ------------------------------------------------------------------

    def is_serial(self) -> bool:
        """True when events of different transactions are not interleaved."""
        order: List[str] = []
        for event in self._events:
            if event.transaction in order:
                if order[-1] != event.transaction:
                    return False
            else:
                order.append(event.transaction)
        return True

    def op_events(self) -> "History":
        """The subsequence of invocation and response events."""
        return History(
            (
                e
                for e in self._events
                if isinstance(e, (InvocationEvent, ResponseEvent))
            ),
            validate=False,
        )

    def op_seq(self) -> OperationSequence:
        """``OpSeq(H)``: pair invocations with responses, drop the rest.

        Defined by the paper for serial failure-free histories; we apply it
        to any per-transaction projection as well (pairing each invocation
        event with the response event that immediately follows it for the
        same transaction, discarding pending invocations and completion
        events).  For multi-transaction histories the history should be
        serial for the result to be meaningful.
        """
        operations: List[Operation] = []
        pending: Dict[str, Invocation] = {}
        for event in self._events:
            if isinstance(event, InvocationEvent):
                pending[event.transaction] = event.invocation
            elif isinstance(event, ResponseEvent):
                invocation = pending.pop(event.transaction, None)
                if invocation is None:
                    raise WellFormednessError(
                        f"response {event} without pending invocation"
                    )
                operations.append(Operation(invocation, event.result))
        return tuple(operations)

    def serial(self, order: Sequence[str]) -> "History":
        """``Serial(H, T)``: the equivalent serial history in order ``T``.

        ``order`` must list every transaction in the history exactly once
        (extra names are ignored).  Each transaction performs the same
        sequence of steps as in ``H``.
        """
        present = set(self.transactions())
        listed = [t for t in order if t in present]
        if set(listed) != present:
            missing = present - set(listed)
            raise ValueError(f"order is missing transactions: {sorted(missing)}")
        pieces: List[Event] = []
        for transaction in listed:
            pieces.extend(self.restrict_transactions(transaction))
        return History(pieces, validate=False)

    def equivalent_to(self, other: "History") -> bool:
        """History equivalence: every transaction takes the same steps."""
        mine = set(self.transactions()) | set(other.transactions())
        return all(
            self.restrict_transactions(t) == other.restrict_transactions(t)
            for t in mine
        )

    # ------------------------------------------------------------------
    # Orders on transactions (Sections 3.3-3.4)
    # ------------------------------------------------------------------

    def precedes(self) -> Set[Tuple[str, str]]:
        """``precedes(H)``: (P, Q) iff some operation invoked by Q returns a
        result after P commits in H.

        Captures potential information flow: Q ran (completed an operation)
        after it could have observed P's commit.
        """
        pairs: Set[Tuple[str, str]] = set()
        committed_so_far: Set[str] = set()
        for event in self._events:
            if isinstance(event, CommitEvent):
                committed_so_far.add(event.transaction)
            elif isinstance(event, ResponseEvent):
                for p in committed_so_far:
                    if p != event.transaction:
                        pairs.add((p, event.transaction))
        return pairs

    def ts_order(self) -> Set[Tuple[str, str]]:
        """``TS(H)``: (P, Q) iff both commit and P's timestamp < Q's."""
        stamps = self.timestamps()
        return {
            (p, q)
            for p in stamps
            for q in stamps
            if p != q and stamps[p] < stamps[q]
        }

    def known(self) -> Set[Tuple[str, str]]:
        """``Known(H) = precedes(H) ∪ TS(H)`` (Section 3.4)."""
        return self.precedes() | self.ts_order()

    def committed_in_timestamp_order(self) -> List[str]:
        """Committed transactions sorted by their commit timestamps."""
        stamps = self.timestamps()
        return sorted(stamps, key=lambda t: stamps[t])


# ----------------------------------------------------------------------
# Well-formedness (Section 2)
# ----------------------------------------------------------------------


def check_well_formed(events: Sequence[Event]) -> None:
    """Raise :class:`WellFormednessError` on any Section 2 violation.

    The constraints checked:

    1. per transaction, invocation and response events strictly alternate,
       starting with an invocation, and a response's object matches the
       immediately preceding invocation's object;
    2. no transaction both commits and aborts;
    3. a transaction neither commits with a pending invocation nor invokes
       operations after committing;
    4. commit events for one transaction all carry the same timestamp;
    5. commit events for different transactions carry different timestamps.

    Aborted transactions are deliberately left unconstrained (they may keep
    invoking operations — the paper's orphan-tolerance choice).
    """
    pending: Dict[str, InvocationEvent] = {}
    committed: Dict[str, Any] = {}
    aborted: Set[str] = set()
    used_stamps: Dict[Any, str] = {}

    for event in events:
        t = event.transaction
        if isinstance(event, InvocationEvent):
            if t in committed:
                raise WellFormednessError(
                    f"{event}: transaction invoked an operation after committing"
                )
            if t in pending:
                raise WellFormednessError(
                    f"{event}: transaction already has a pending invocation"
                )
            pending[t] = event
        elif isinstance(event, ResponseEvent):
            if t not in pending:
                raise WellFormednessError(
                    f"{event}: response without a pending invocation"
                )
            if pending[t].obj != event.obj:
                raise WellFormednessError(
                    f"{event}: response object differs from invocation object"
                    f" {pending[t].obj}"
                )
            if t in committed:
                raise WellFormednessError(
                    f"{event}: response delivered after commit"
                )
            del pending[t]
        elif isinstance(event, CommitEvent):
            if t in aborted:
                raise WellFormednessError(f"{event}: transaction already aborted")
            if t in pending:
                raise WellFormednessError(
                    f"{event}: commit with a pending invocation"
                )
            if t in committed:
                if committed[t] != event.timestamp:
                    raise WellFormednessError(
                        f"{event}: commit with a different timestamp than before"
                        f" ({committed[t]})"
                    )
            else:
                owner = used_stamps.get(event.timestamp)
                if owner is not None and owner != t:
                    raise WellFormednessError(
                        f"{event}: timestamp already used by {owner}"
                    )
                committed[t] = event.timestamp
                used_stamps[event.timestamp] = t
        elif isinstance(event, AbortEvent):
            if t in committed:
                raise WellFormednessError(f"{event}: transaction already committed")
            aborted.add(t)
        else:  # pragma: no cover - defensive
            raise WellFormednessError(f"unknown event type: {event!r}")


class HistoryBuilder:
    """Fluent constructor for histories.

    Example — the Section 3.2 FIFO queue history::

        h = (HistoryBuilder("X")
             .operation("P", Invocation("Enq", (1,)), "Ok")
             .operation("Q", Invocation("Enq", (2,)), "Ok")
             .commit("P", 2)
             .commit("Q", 1)
             .history())
    """

    def __init__(self, default_object: str = "X"):
        self._default_object = default_object
        self._events: List[Event] = []

    def invoke(
        self, transaction: str, invocation: Invocation, obj: Optional[str] = None
    ) -> "HistoryBuilder":
        """Append an invocation event."""
        self._events.append(
            InvocationEvent(transaction, obj or self._default_object, invocation)
        )
        return self

    def respond(
        self, transaction: str, result: Any, obj: Optional[str] = None
    ) -> "HistoryBuilder":
        """Append a response event."""
        self._events.append(
            ResponseEvent(transaction, obj or self._default_object, result)
        )
        return self

    def operation(
        self,
        transaction: str,
        invocation: Invocation,
        result: Any = "Ok",
        obj: Optional[str] = None,
    ) -> "HistoryBuilder":
        """Append an invocation immediately followed by its response."""
        return self.invoke(transaction, invocation, obj).respond(
            transaction, result, obj
        )

    def commit(
        self, transaction: str, timestamp: Any, obj: Optional[str] = None
    ) -> "HistoryBuilder":
        """Append a commit event with the given timestamp."""
        self._events.append(
            CommitEvent(transaction, obj or self._default_object, timestamp)
        )
        return self

    def abort(self, transaction: str, obj: Optional[str] = None) -> "HistoryBuilder":
        """Append an abort event."""
        self._events.append(AbortEvent(transaction, obj or self._default_object))
        return self

    def history(self, validate: bool = True) -> History:
        """Finish and return the (validated) history."""
        return History(self._events, validate=validate)
