"""Compaction of intentions lists (paper, Section 6).

The plain LOCK machine retains every committed transaction's intentions
list forever, so its state grows without bound.  Section 6 introduces the
bookkeeping that lets an object *forget* sufficiently old committed
transactions, replacing their intentions with a single *version*:

* ``clock`` — the latest observed commit timestamp (initially -∞);
* ``bound(Q)`` — a lower bound on the commit timestamp an active
  transaction ``Q`` could still choose; raised to the current clock value
  whenever ``Q`` invokes an operation or receives a response (valid because
  the timestamp-generation constraint forces ``precedes ⊆ TS``);
* ``horizon`` — the smaller of the smallest bound of an active transaction
  and the largest committed timestamp (Definition 20); -∞ when neither
  exists;
* ``common`` — the intentions of committed transactions with timestamps at
  or below the horizon, in timestamp order (Definition 22); Lemma 23 /
  Theorem 24 show it grows monotonically, so it may be collapsed into a
  version.

:class:`CompactingLockMachine` implements all of this on top of
:class:`~repro.core.lock_machine.LockMachine`: the common prefix is kept
only as the state-set it denotes (the "version"), and the intentions lists,
commit timestamps, and bounds of forgotten transactions are discarded, as
in the paper's Avalon/C++ Account implementation (``forget()``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from .conflict import Relation
from .errors import ProtocolError
from .lock_machine import LockMachine
from .operations import Operation, OperationSequence
from .specs import SerialSpec, StateSet

__all__ = ["CompactingLockMachine", "NEG_INFINITY"]


class _NegInfinity:
    """A value smaller than every timestamp (the paper's -∞ clock init)."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return not isinstance(other, _NegInfinity)

    def __le__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __ge__(self, other: Any) -> bool:
        return isinstance(other, _NegInfinity)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _NegInfinity)

    def __hash__(self) -> int:
        return hash("_NegInfinity")

    def __repr__(self) -> str:
        return "-inf"


#: Singleton -∞ timestamp used to initialise the clock and bounds.
NEG_INFINITY = _NegInfinity()


class CompactingLockMachine(LockMachine):
    """LOCK machine with Section 6 horizon-based forgetting.

    Behaviourally identical to :class:`LockMachine` — the auxiliary
    components "have no effect on L(LOCK); they serve only for
    bookkeeping" — but the retained state stays proportional to the live
    data plus the intentions of unforgotten transactions.  The equivalence
    is exercised by differential tests in
    ``tests/core/test_compaction.py``.
    """

    def __init__(
        self,
        spec: SerialSpec,
        conflict: Relation,
        obj: str = "X",
        view_caching: bool = True,
    ):
        super().__init__(spec, conflict, obj, view_caching=view_caching)
        #: ``s.clock``: latest observed commit timestamp.
        self.clock: Any = NEG_INFINITY
        #: ``s.bound``: per-transaction commit-timestamp lower bounds.
        self._bounds: Dict[str, Any] = {}
        #: The version: state-set denoted by the forgotten common prefix.
        self._version: StateSet = spec.initial_states()
        #: Largest commit timestamp folded into the version: the version
        #: *is* the committed state as of this timestamp (recovery fence).
        self._version_timestamp: Any = NEG_INFINITY
        #: Number of operations folded into the version (for metrics).
        self._forgotten_operations = 0
        #: Transactions forgotten so far (for metrics/tests).
        self._forgotten_transactions: List[str] = []
        #: Read-only pins: snapshot timestamps that must stay addressable
        #: (horizon is held at or below every pin), keyed by reader token.
        self._pins: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------

    def bound(self, transaction: str) -> Optional[Any]:
        """``s.bound(Q)``, or None when undefined."""
        return self._bounds.get(transaction)

    @property
    def version_states(self) -> StateSet:
        """The compacted version: state-set of the common prefix."""
        return self._version

    @property
    def version_timestamp(self) -> Any:
        """Largest commit timestamp folded into the version (-∞ if none).

        Intentions with commit timestamps at or below this are contained
        in :attr:`version_states`; everything above must be replayed from
        a log to rebuild the committed state.
        """
        return self._version_timestamp

    @property
    def forgotten_operations(self) -> int:
        """How many operations have been folded into the version."""
        return self._forgotten_operations

    @property
    def forgotten_transactions(self) -> Tuple[str, ...]:
        """Transactions whose intentions were folded into the version."""
        return tuple(self._forgotten_transactions)

    def retained_intentions(self) -> int:
        """Total operations still held in intentions lists (a size metric;
        the uncompacted machine's figure grows without bound)."""
        return sum(len(ops) for ops in self._intentions.values())

    def horizon(self) -> Any:
        """Definition 20's horizon time.

        The smaller of the smallest bound of an *active* transaction and
        the largest commit timestamp of an unforgotten committed
        transaction; -∞ when there are no active or committed transactions.
        """
        candidates: List[Any] = []
        active_bounds = [
            b
            for t, b in self._bounds.items()
            if t not in self._committed and t not in self._aborted
        ]
        if active_bounds:
            candidates.append(min(active_bounds))
        candidates.extend(self._pins.values())
        if self._committed:
            candidates.append(max(self._committed.values()))
        if not candidates:
            return NEG_INFINITY
        return min(candidates)

    # ------------------------------------------------------------------
    # Views on top of the version
    # ------------------------------------------------------------------

    def committed_state(self) -> OperationSequence:
        """Retained committed intentions (timestamp order), *excluding* the
        operations already folded into the version."""
        return super().committed_state()

    def _base_states(self) -> StateSet:
        """Views replay from the version: the folded common prefix.

        Combined with the base machine's incremental caching, a view is
        the version, then the retained committed intentions in timestamp
        order, then the transaction's own intentions — with the first two
        segments cached and the third advanced one step per operation.
        """
        return self._version

    # ------------------------------------------------------------------
    # Multiversion read-only support (Section 7.1's generalisation)
    # ------------------------------------------------------------------

    def pin(self, token: str, timestamp: Any) -> None:
        """Hold the horizon at or below ``timestamp``.

        A read-only transaction with a start-assigned timestamp pins every
        object it might read so the committed intentions it must observe
        (those with commit timestamps at or below its own) stay separable
        from later ones.  Pinning below the current horizon is rejected —
        that snapshot is already folded away.
        """
        if timestamp < self.horizon():
            raise ValueError(
                f"cannot pin {timestamp}: horizon already at {self.horizon()}"
            )
        self._pins[token] = timestamp

    def unpin(self, token: str) -> None:
        """Release a read-only pin and let the horizon advance."""
        self._pins.pop(token, None)
        self.forget()

    def has_pin(self, token: str) -> bool:
        """True while ``token`` holds a horizon pin on this object."""
        return token in self._pins

    def read_view_states(self, timestamp: Any) -> StateSet:
        """The committed state as of ``timestamp``: the version plus every
        retained committed intentions list with commit timestamp at or
        below ``timestamp``, in timestamp order.  Sees no active
        transaction's intentions and takes no locks."""
        visible = [
            t
            for t in self.committed_order()
            if self._committed[t] <= timestamp
        ]
        states = self._version
        for transaction in visible:
            states = self.spec.run_from(
                states, self._intentions.get(transaction, ())
            )
        return states

    # ------------------------------------------------------------------
    # Durability (used by :mod:`repro.recovery`)
    # ------------------------------------------------------------------

    def export_version(self) -> Tuple[Any, Any, StateSet]:
        """``(version_timestamp, clock, version)`` — the checkpointable
        core of the machine.  The version is the committed state as of
        ``version_timestamp`` (Definition 20's horizon at the last fold),
        so a checkpoint of this triple plus the log suffix of commits with
        later timestamps reconstructs the committed state exactly.
        """
        return (self._version_timestamp, self.clock, self._version)

    def restore_version(
        self,
        states: StateSet,
        clock: Any = NEG_INFINITY,
        version_timestamp: Any = NEG_INFINITY,
    ) -> None:
        """Install a checkpointed version into a pristine machine.

        Only a machine that has accepted no events may be restored; the
        recovery driver replays the log suffix on top afterwards.
        """
        if self._accepted or self._committed or self._intentions or self._pending:
            raise ProtocolError("cannot restore a version into a used machine")
        version = frozenset(states)
        if not version:
            raise ValueError("a version must denote at least one state")
        self._version = version
        self.clock = clock
        self._version_timestamp = version_timestamp
        self._invalidate_views(None)

    def replay_committed(
        self, transaction: str, timestamp: Any, intentions
    ) -> None:
        super().replay_committed(transaction, timestamp, intentions)
        if self.clock < timestamp:
            self.clock = timestamp
        self._bounds[transaction] = timestamp

    def replay_active(self, transaction: str, intentions, bound: Any = None) -> None:
        super().replay_active(transaction, intentions)
        # The bound piggybacked on the PREPARE vote: the transaction's
        # eventual commit timestamp exceeds it, so the horizon stays safe.
        self._bounds[transaction] = self.clock if bound is None else bound

    # ------------------------------------------------------------------
    # Section 6 postconditions
    # ------------------------------------------------------------------

    def _on_event_observed(self, transaction: str) -> None:
        # <i,X,Q> / <r,X,Q>: s.bound = s'.bound[Q -> s.clock]
        if transaction not in self._committed and transaction not in self._aborted:
            self._bounds[transaction] = self.clock

    def _on_commit_observed(self, transaction: str, timestamp: Any) -> None:
        # <commit(t),X,Q>: s.clock = max(s'.clock, t); s.bound[Q -> t]
        if self.clock < timestamp:
            self.clock = timestamp
        self._bounds[transaction] = timestamp
        self.forget()

    def _on_abort_observed(self, transaction: str) -> None:
        # <abort,X,Q>: the bound and intentions are discarded (appendix).
        self._bounds.pop(transaction, None)
        self._intentions.pop(transaction, None)
        self.forget()

    # ------------------------------------------------------------------
    # Forgetting
    # ------------------------------------------------------------------

    def forget(self) -> List[str]:
        """Fold every sufficiently old committed transaction into the
        version (the appendix's ``forget()``).

        A committed transaction ``Q`` may be forgotten once
        ``s.committed(Q) <= s.horizon`` — no active transaction can still
        commit with an earlier timestamp (Lemma 19), so ``Q``'s intentions
        are a prefix of every future view.  Intentions are applied in
        commit-timestamp order; the intentions list, timestamp, and bound
        of each forgotten transaction are discarded.  Returns the list of
        transactions forgotten by this call.

        ``ready`` is computed from a horizon *snapshot*, then the inner
        loop mutates ``_committed``/``_bounds`` before the horizon is
        recomputed.  The snapshot is safe by a monotonicity invariant:
        ``ready`` is ascending in commit timestamp and every candidate
        entering the horizon's min (active bounds, pins, and the largest
        *remaining* committed timestamp, which includes the element about
        to be forgotten) stays at or above the snapshot horizon while the
        loop runs, so each element still satisfies Lemma 19's
        ``committed(Q) <= horizon`` against the *recomputed* horizon at
        the moment it is forgotten.  The assertion below re-checks this
        per transaction; ``tests/core/test_compaction.py`` drives the
        same check through skewed-timestamp property workloads.

        Folding moves operations from the retained committed prefix into
        the version without changing the state-set the two jointly
        denote (``run_from`` distributes over concatenation), so the
        incremental view caches stay valid across a fold — they are
        already the rebased values.  The bisimulation suite pins this by
        forcing folds under a live cached view.
        """
        forgotten: List[str] = []
        old_version_timestamp = self._version_timestamp
        collapsed = 0
        while True:
            horizon = self.horizon()
            ready = sorted(
                (t for t in self._committed if self._committed[t] <= horizon),
                key=lambda t: self._committed[t],
            )
            if not ready:
                break
            for transaction in ready:
                # Lemma 19 against the *current* horizon, not the
                # snapshot (see docstring).
                assert self._committed[transaction] <= self.horizon(), (
                    f"horizon regressed below {transaction}'s commit "
                    "timestamp mid-forget; the snapshot invariant is broken"
                )
                intentions = self._intentions.pop(transaction, ())
                self._version = self.spec.run_from(self._version, intentions)
                if not self._version:
                    raise AssertionError(
                        "compaction applied an illegal committed intentions list;"
                        " this indicates a protocol bug"
                    )
                self._forgotten_operations += len(intentions)
                collapsed += len(intentions)
                if self._version_timestamp < self._committed[transaction]:
                    self._version_timestamp = self._committed[transaction]
                del self._committed[transaction]
                self._bounds.pop(transaction, None)
                forgotten.append(transaction)
                self._forgotten_transactions.append(transaction)
        if forgotten:
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "compaction.advance",
                    obj=self.obj,
                    old_horizon=old_version_timestamp,
                    new_horizon=self._version_timestamp,
                    collapsed=collapsed,
                    forgotten=tuple(forgotten),
                    retained=self.retained_intentions(),
                )
        return forgotten
