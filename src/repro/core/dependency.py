"""Dependency relations (paper, Section 4.2).

Definition 3: a binary relation ``R`` on operations is a *dependency
relation* for a serial specification when, for all operation sequences
``h``, ``k`` and all operations ``p``::

    h * k legal  and  h * p legal  and  (q, p) not in R for every q in k
        ==>  h * p * k legal.

This module implements:

* :func:`check_dependency_relation` / :func:`is_dependency_relation` — a
  bounded exhaustive verifier for Definition 3 over a finite operation
  universe (Definition 3 quantifies over infinitely many sequences; the
  verifier explores every legal ``h`` and ``k`` up to configurable length
  bounds, which suffices to *refute* a candidate and gives strong evidence
  for acceptance — the ADT modules additionally carry proofs-by-derivation
  via ``invalidated_by``);
* :func:`is_r_closed` and :func:`is_view` — Definitions 5 and 6;
* :func:`find_minimal_dependency_relations` — search for minimal dependency
  sub-relations of a given relation (dependency relations are upward
  closed, so minimality reduces to single-pair removals);
* :func:`check_lemma4` — the reordering property of Lemma 4, used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set

from .conflict import EnumeratedRelation, Relation
from .operations import Operation, OperationSequence
from .specs import SerialSpec, StateSet, enumerate_legal_with_states

__all__ = [
    "DependencyViolation",
    "check_dependency_relation",
    "is_dependency_relation",
    "is_r_closed",
    "is_view",
    "find_minimal_dependency_relations",
    "check_lemma4",
]


@dataclass(frozen=True)
class DependencyViolation:
    """A concrete counterexample to Definition 3.

    ``h * k`` and ``h * p`` are legal, no operation of ``k`` is related to
    ``p`` by the candidate relation, yet ``h * p * k`` is illegal.
    """

    h: OperationSequence
    p: Operation
    k: OperationSequence

    def __str__(self) -> str:
        render = lambda seq: " * ".join(str(q) for q in seq) or "<empty>"
        return (
            f"h = {render(self.h)}; p = {self.p}; k = {render(self.k)}: "
            "h*k and h*p legal, k independent of p, but h*p*k illegal"
        )


def check_dependency_relation(
    relation: Relation,
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_h: int = 3,
    max_k: int = 3,
) -> Optional[DependencyViolation]:
    """Bounded exhaustive check of Definition 3.

    Explores every legal ``h`` over ``universe`` with ``len(h) <= max_h``;
    for each ``p`` in the universe with ``h * p`` legal, extends ``k`` one
    operation at a time (each new operation must keep ``h * k`` legal and be
    unrelated to ``p``), tracking in lock-step the state-sets of ``h * k``
    and ``h * p * k``.  The moment ``h * p * k`` dies while ``h * k``
    survives, a violation is returned.  Returns ``None`` when no violation
    exists within the bounds.
    """
    for h, h_states in enumerate_legal_with_states(spec, universe, max_h):
        for p in universe:
            after_p = spec.step(h_states, p)
            if not after_p:
                continue
            violation = _grow_k(
                relation, spec, universe, h, p, h_states, after_p, (), max_k
            )
            if violation is not None:
                return violation
    return None


def _grow_k(
    relation: Relation,
    spec: SerialSpec,
    universe: Sequence[Operation],
    h: OperationSequence,
    p: Operation,
    without_p: StateSet,
    with_p: StateSet,
    k: OperationSequence,
    budget: int,
) -> Optional[DependencyViolation]:
    """Depth-first extension of ``k``; see :func:`check_dependency_relation`.

    ``without_p`` tracks states after ``h * k``; ``with_p`` after
    ``h * p * k``.  Both branches start legal; ``without_p`` stays legal by
    construction, so the branch dies only through ``with_p``.
    """
    if budget == 0:
        return None
    for q in universe:
        if relation.related(q, p):
            continue
        nxt_without = spec.step(without_p, q)
        if not nxt_without:
            continue  # h * k * q not legal: Definition 3 places no demand
        nxt_with = spec.step(with_p, q) if with_p else with_p
        new_k = k + (q,)
        if not nxt_with:
            return DependencyViolation(h, p, new_k)
        violation = _grow_k(
            relation, spec, universe, h, p, nxt_without, nxt_with, new_k, budget - 1
        )
        if violation is not None:
            return violation
    return None


def is_dependency_relation(
    relation: Relation,
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_h: int = 3,
    max_k: int = 3,
) -> bool:
    """True when no Definition 3 violation exists within the bounds."""
    return (
        check_dependency_relation(relation, spec, universe, max_h, max_k) is None
    )


# ----------------------------------------------------------------------
# R-closed subsequences and views (Definitions 5-6)
# ----------------------------------------------------------------------


def _subsequence_indices(
    g: Sequence[Operation], h: Sequence[Operation]
) -> Optional[List[int]]:
    """Indices embedding ``g`` into ``h`` (greedy), or None if not a subsequence."""
    indices: List[int] = []
    start = 0
    for operation in g:
        for i in range(start, len(h)):
            if h[i] == operation:
                indices.append(i)
                start = i + 1
                break
        else:
            return None
    return indices


def is_r_closed(
    g: Sequence[Operation], h: Sequence[Operation], relation: Relation
) -> bool:
    """Definition 5: ``g`` is an R-closed subsequence of ``h``.

    Whenever ``g`` contains an operation ``q`` of ``h``, it also contains
    every earlier operation ``p`` of ``h`` with ``(q, p)`` in R.
    """
    embedding = _subsequence_indices(g, h)
    if embedding is None:
        return False
    chosen = set(embedding)
    for pos, q_index in enumerate(embedding):
        q = h[q_index]
        for earlier in range(q_index):
            if earlier in chosen:
                continue
            if relation.related(q, h[earlier]):
                return False
    return True


def is_view(
    g: Sequence[Operation],
    h: Sequence[Operation],
    q: Operation,
    relation: Relation,
) -> bool:
    """Definition 6: ``g`` is an R-view of ``h`` for operation ``q``.

    ``g`` must be R-closed in ``h`` and include every ``p`` in ``h`` with
    ``(q, p)`` in R.
    """
    if not is_r_closed(g, h, relation):
        return False
    needed = [p for p in h if relation.related(q, p)]
    remaining = list(g)
    for p in needed:
        if p in remaining:
            remaining.remove(p)
        else:
            return False
    return True


# ----------------------------------------------------------------------
# Minimality
# ----------------------------------------------------------------------


def find_minimal_dependency_relations(
    relation: EnumeratedRelation,
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_h: int = 3,
    max_k: int = 3,
) -> List[EnumeratedRelation]:
    """All minimal dependency relations contained in ``relation``.

    Dependency relations are upward closed (adding pairs only weakens the
    premise of Definition 3), so the set of dependency sub-relations of
    ``relation`` forms an upward-closed family and its minimal elements can
    be found by a standard shrink-and-branch search.  The paper observes
    that an object may have several distinct minimal dependency relations
    (the FIFO queue has two, Figures 4-2 and 4-3).

    The input must itself be a (bounded-verified) dependency relation.
    Complexity is exponential in the relation size; intended for the small
    enumerated universes used in the benchmarks.
    """
    if not is_dependency_relation(relation, spec, universe, max_h, max_k):
        raise ValueError("input relation is not a dependency relation")

    minimal: Set[FrozenSet] = set()
    results: List[EnumeratedRelation] = []
    stack: List[EnumeratedRelation] = [relation]
    seen: Set[FrozenSet] = set()

    while stack:
        candidate = stack.pop()
        if candidate.pair_set in seen:
            continue
        seen.add(candidate.pair_set)
        shrinkable = []
        for pair in sorted(candidate.pair_set, key=str):
            smaller = candidate.without(pair)
            if is_dependency_relation(smaller, spec, universe, max_h, max_k):
                shrinkable.append(smaller)
        if shrinkable:
            stack.extend(shrinkable)
        elif candidate.pair_set not in minimal:
            minimal.add(candidate.pair_set)
            results.append(candidate)
    return results


def is_minimal_dependency_relation(
    relation: EnumeratedRelation,
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_h: int = 3,
    max_k: int = 3,
) -> bool:
    """True when ``relation`` is a dependency relation and removing any
    single pair breaks Definition 3 (sufficient by upward closure)."""
    if not is_dependency_relation(relation, spec, universe, max_h, max_k):
        return False
    return all(
        not is_dependency_relation(
            relation.without(pair), spec, universe, max_h, max_k
        )
        for pair in relation.pair_set
    )


# ----------------------------------------------------------------------
# Lemma 4 (used by property tests)
# ----------------------------------------------------------------------


def check_lemma4(
    relation: Relation,
    spec: SerialSpec,
    h: OperationSequence,
    k1: OperationSequence,
    k2: OperationSequence,
) -> bool:
    """Check the conclusion of Lemma 4 for concrete sequences.

    If ``h * k1`` and ``h * k2`` are legal and no operation in ``k1``
    depends on an operation in ``k2``, then ``h * k2 * k1`` must be legal.
    Returns True when the lemma's guarantee holds (or its premises fail).
    """
    if not spec.is_legal(h + k1) or not spec.is_legal(h + k2):
        return True
    if any(relation.related(q1, q2) for q1 in k1 for q2 in k2):
        return True
    return spec.is_legal(h + k2 + k1)
