"""Serial specifications (paper, Section 3.1).

A *serial specification* is a prefix-closed set of operation sequences
describing an object's behaviour in the absence of concurrency and failures.
We represent serial specifications operationally, as (possibly
non-deterministic, possibly partial) state machines:

* ``initial_state()`` returns the object's initial abstract state;
* ``outcomes(state, invocation)`` returns every ``(result, next_state)``
  pair the specification permits for that invocation in that state.

Partial operations (e.g. ``Deq`` on an empty FIFO queue) are modelled by
returning *no* outcomes; non-deterministic operations (e.g. ``Rem`` on a
SemiQueue) return several.

Because specifications may be non-deterministic, deciding whether an
operation sequence is *legal* (a member of the specification) requires
tracking the whole set of states reachable by some run; :meth:`run` and
:meth:`is_legal` do exactly that.  All states must be hashable; we strongly
recommend canonical immutable states (tuples, frozensets, numbers) so that
state-set equality coincides with behavioural equivalence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, FrozenSet, Hashable, Iterable, Iterator, List, Sequence, Tuple

from .canon import canonical_key
from .operations import Invocation, Operation, OperationSequence

__all__ = ["SerialSpec", "StateSet", "enumerate_legal_sequences"]

#: The set of abstract states reachable after some operation sequence.  An
#: empty state-set means the sequence is illegal (not in the specification).
StateSet = FrozenSet[Hashable]


class SerialSpec(ABC):
    """Operational serial specification of an abstract data type.

    Subclasses define the abstract state space and the transition structure;
    this base class derives legality checking, result enumeration, and state
    set simulation from them.
    """

    #: Human-readable type name ("FIFOQueue", "Account", ...).
    name: str = "AbstractType"

    @abstractmethod
    def initial_state(self) -> Hashable:
        """Return the object's initial abstract state."""

    @abstractmethod
    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        """All ``(result, next_state)`` pairs permitted for ``invocation``.

        Returning an empty iterable means the invocation is not currently
        enabled (a *partial* operation, which in a live system would block)
        or not recognised at all.
        """

    # ------------------------------------------------------------------
    # Derived machinery
    # ------------------------------------------------------------------

    def initial_states(self) -> StateSet:
        """The initial state-set (singleton for every spec in this library)."""
        return frozenset({self.initial_state()})

    def step(self, states: StateSet, operation: Operation) -> StateSet:
        """Advance a state-set by one operation.

        A state survives only if the specification permits ``operation``'s
        invocation to return ``operation.result`` from it.  The resulting
        set is empty iff the operation is illegal after every run consistent
        with the states given.
        """
        nxt = set()
        for state in states:
            for result, succ in self.outcomes(state, operation.invocation):
                if result == operation.result:
                    nxt.add(succ)
        return frozenset(nxt)

    def run(self, sequence: Sequence[Operation]) -> StateSet:
        """State-set reachable after ``sequence`` (empty iff illegal)."""
        states = self.initial_states()
        for operation in sequence:
            if not states:
                return states
            states = self.step(states, operation)
        return states

    def run_from(self, states: StateSet, sequence: Sequence[Operation]) -> StateSet:
        """Advance an existing state-set through ``sequence``."""
        for operation in sequence:
            if not states:
                return states
            states = self.step(states, operation)
        return states

    def is_legal(self, sequence: Sequence[Operation]) -> bool:
        """Membership test: is ``sequence`` in the serial specification?

        Serial specifications represented this way are prefix-closed, as
        the paper's definitions implicitly assume.
        """
        return bool(self.run(sequence))

    def is_legal_extension(self, states: StateSet, operation: Operation) -> bool:
        """Would appending ``operation`` keep a run from ``states`` legal?"""
        return bool(self.step(states, operation))

    def results_for(self, states: StateSet, invocation: Invocation) -> List[Any]:
        """All results the spec permits for ``invocation`` from ``states``.

        Used by the locking protocol to "choose a result consistent with the
        view" (Section 4.1).  The returned list is duplicate-free and
        deterministically ordered for reproducibility: candidate states
        are ranked by their canonical encoding
        (:func:`repro.core.canon.canonical_key`), not ``repr`` — the
        ``repr`` of set-valued states lists elements in hash-iteration
        order, which varies with ``PYTHONHASHSEED`` and would let the
        chosen result flip between runs.
        """
        seen: List[Any] = []
        for state in sorted(states, key=canonical_key):
            for result, _ in self.outcomes(state, invocation):
                if result not in seen:
                    seen.append(result)
        return seen

    def equivalent(self, h1: Sequence[Operation], h2: Sequence[Operation]) -> bool:
        """Sufficient check for Definition 25 equivalence of two sequences.

        Two operation sequences are equivalent when no future computation
        can distinguish them.  With canonical abstract states, equality of
        reachable state-sets implies equivalence (same state-set => same
        legal futures).  All ADTs in :mod:`repro.adts` use canonical states,
        for which this check is also *necessary* because distinct abstract
        states are distinguishable by some experiment.
        """
        return self.run(h1) == self.run(h2)


def enumerate_legal_sequences(
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_length: int,
) -> Iterator[OperationSequence]:
    """Yield every legal operation sequence over ``universe`` up to a length.

    The enumeration is a depth-first walk of the (prefix-closed) tree of
    legal sequences, yielding shorter prefixes before their extensions.  It
    is the work-horse of the bounded exhaustive checks in
    :mod:`repro.core.dependency`, :mod:`repro.core.invalidated_by` and
    :mod:`repro.core.commutativity`.
    """
    if max_length < 0:
        raise ValueError("max_length must be non-negative")

    def walk(prefix: OperationSequence, states: StateSet) -> Iterator[OperationSequence]:
        yield prefix
        if len(prefix) == max_length:
            return
        for operation in universe:
            nxt = spec.step(states, operation)
            if nxt:
                yield from walk(prefix + (operation,), nxt)

    yield from walk((), spec.initial_states())


def enumerate_legal_with_states(
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_length: int,
) -> Iterator[Tuple[OperationSequence, StateSet]]:
    """Like :func:`enumerate_legal_sequences` but also yields state-sets.

    Avoids re-running each sequence from scratch inside bounded searches.
    """
    if max_length < 0:
        raise ValueError("max_length must be non-negative")

    stack: List[Tuple[OperationSequence, StateSet]] = [((), spec.initial_states())]
    while stack:
        prefix, states = stack.pop()
        yield prefix, states
        if len(prefix) == max_length:
            continue
        for operation in universe:
            nxt = spec.step(states, operation)
            if nxt:
                stack.append((prefix + (operation,), nxt))
