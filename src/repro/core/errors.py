"""Exception hierarchy shared across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ProtocolError",
    "LockConflict",
    "WouldBlock",
    "IllegalOperation",
    "TransactionAborted",
]


class ReproError(Exception):
    """Base class for every library-specific error."""


class ProtocolError(ReproError):
    """A precondition of the locking protocol was violated by the caller
    (e.g. responding to a transaction with no pending invocation)."""


class LockConflict(ReproError):
    """Another active transaction holds a conflicting lock.

    The paper's protocol *refuses* the lock request; the invocation's
    tentative result is discarded and the invocation is retried later
    (possibly returning a different result).
    """

    def __init__(self, message: str = "", holder: str = "", operation=None):
        super().__init__(message or "lock refused: conflicting lock held")
        #: Transaction currently holding the conflicting lock, if known.
        self.holder = holder
        #: Conflicting operation already executed, if known.
        self.operation = operation


class WouldBlock(ReproError):
    """A partial operation has no legal outcome in the current view.

    Models the paper's blocking partial operations (``Deq`` on an empty
    queue); a live system would wait and retry.
    """


class IllegalOperation(ReproError):
    """The requested result is not legal in the transaction's view."""


class TransactionAborted(ReproError):
    """The transaction was aborted and cannot take further steps."""
