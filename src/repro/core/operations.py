"""Operations and invocations (paper, Section 2 and 3.1).

The paper models the interface between transactions and objects in terms of
*invocations* (an operation name plus argument values) and *operations*
(an invocation paired with the response it received).  An operation such as::

    X: [Enq(3), Ok]

is represented here as ``Operation(Invocation("Enq", (3,)), "Ok")``.

Operations are immutable and hashable so they can be used as members of
operation sequences, lock tables, and dependency relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

__all__ = ["Invocation", "Operation", "OperationSequence", "op"]


@dataclass(frozen=True, order=True)
class Invocation:
    """An operation name together with its argument values.

    Corresponds to the ``inv`` field of the paper's invocation events: it
    "includes both the name of the operation and its arguments".
    """

    name: str
    args: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("invocation name must be a non-empty string")
        if not isinstance(self.args, tuple):
            # Accept any iterable of arguments for convenience but store a
            # tuple so the invocation stays hashable.
            object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"

    def with_result(self, result: Any) -> "Operation":
        """Pair this invocation with a response, yielding an operation."""
        return Operation(self, result)


@dataclass(frozen=True, order=True)
class Operation:
    """An invocation paired with its matching response.

    This is the paper's notion of an operation (Section 3.1): "a pair
    consisting of an invocation and a matching response".  A single
    ``Operation`` value represents one *execution* of an operation in the
    informal sense.
    """

    invocation: Invocation
    result: Any = "Ok"

    @property
    def name(self) -> str:
        """The operation name, e.g. ``"Enq"``."""
        return self.invocation.name

    @property
    def args(self) -> Tuple[Any, ...]:
        """The argument values of the invocation."""
        return self.invocation.args

    def __str__(self) -> str:
        return f"[{self.invocation}, {self.result!r}]"


#: An operation sequence in the sense of Section 3.1: a (finite) sequence of
#: operations.  Sequences are represented as tuples so they are hashable and
#: can be memoised during bounded exhaustive searches.
OperationSequence = Tuple[Operation, ...]


def op(name: str, *args: Any, result: Any = "Ok") -> Operation:
    """Convenience constructor: ``op("Enq", 3)`` == ``[Enq(3), Ok]``.

    Keyword argument ``result`` supplies the response value; it defaults to
    the conventional ``"Ok"`` acknowledgement used throughout the paper.
    """
    return Operation(Invocation(name, args), result)
