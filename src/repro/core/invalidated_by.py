"""The invalidated-by relation (paper, Definitions 8-9, Theorem 10).

Definition 8: operation ``p`` *invalidates* operation ``q`` when there exist
operation sequences ``h1`` and ``h2`` such that ``h1 * p * h2`` and
``h1 * h2 * q`` are legal but ``h1 * p * h2 * q`` is not.

Definition 9: *invalidated-by* contains all pairs ``(q, p)`` such that ``p``
invalidates ``q``.  Theorem 10 shows invalidated-by is always a dependency
relation; it is the paper's systematic recipe for deriving lock-conflict
constraints directly from a data type's serial specification, and it yields
exactly the tables of Figures 4-1, 4-2, 4-4 and 4-5.

The derivation here is a bounded exhaustive search over a finite operation
universe: every legal ``h1`` up to ``max_h1`` operations, and every ``h2``
up to ``max_h2`` operations grown in lock-step along the two branches
(with and without ``p``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

from .conflict import EnumeratedRelation
from .operations import Operation, OperationSequence
from .specs import SerialSpec, StateSet, enumerate_legal_with_states

__all__ = ["invalidates", "invalidated_by", "InvalidationWitness", "find_invalidation_witness"]


@dataclass(frozen=True)
class InvalidationWitness:
    """A Definition 8 witness that ``p`` invalidates ``q``."""

    p: Operation
    q: Operation
    h1: OperationSequence
    h2: OperationSequence

    def __str__(self) -> str:
        render = lambda seq: " * ".join(str(x) for x in seq) or "<empty>"
        return (
            f"{self.p} invalidates {self.q}: with h1 = {render(self.h1)}, "
            f"h2 = {render(self.h2)}, h1*p*h2 and h1*h2*q are legal but "
            "h1*p*h2*q is not"
        )


def find_invalidation_witness(
    spec: SerialSpec,
    p: Operation,
    q: Operation,
    universe: Sequence[Operation],
    max_h1: int = 3,
    max_h2: int = 2,
) -> Optional[InvalidationWitness]:
    """Search for an ``(h1, h2)`` witness that ``p`` invalidates ``q``.

    For each legal ``h1`` with ``h1 * p`` legal, grows ``h2`` while both
    ``h1 * h2`` and ``h1 * p * h2`` remain legal (both are required: legality
    of ``h1 * h2 * q`` forces its prefix ``h1 * h2`` legal too), then tests
    whether ``q`` is legal on the p-free branch but illegal on the p-branch.
    """

    def grow(
        h1: OperationSequence,
        h2: OperationSequence,
        without_p: StateSet,
        with_p: StateSet,
        budget: int,
    ) -> Optional[InvalidationWitness]:
        q_without = spec.step(without_p, q)
        if q_without:  # h1 * h2 * q legal
            q_with = spec.step(with_p, q)
            if not q_with:  # h1 * p * h2 * q illegal
                return InvalidationWitness(p, q, h1, h2)
        if budget == 0:
            return None
        for nxt in universe:
            n_without = spec.step(without_p, nxt)
            if not n_without:
                continue
            n_with = spec.step(with_p, nxt)
            if not n_with:
                continue
            witness = grow(h1, h2 + (nxt,), n_without, n_with, budget - 1)
            if witness is not None:
                return witness
        return None

    for h1, states in enumerate_legal_with_states(spec, universe, max_h1):
        after_p = spec.step(states, p)
        if not after_p:
            continue
        witness = grow(h1, (), states, after_p, max_h2)
        if witness is not None:
            return witness
    return None


def invalidates(
    spec: SerialSpec,
    p: Operation,
    q: Operation,
    universe: Sequence[Operation],
    max_h1: int = 3,
    max_h2: int = 2,
) -> bool:
    """Bounded Definition 8 test: does ``p`` invalidate ``q``?"""
    return (
        find_invalidation_witness(spec, p, q, universe, max_h1, max_h2) is not None
    )


def invalidated_by(
    spec: SerialSpec,
    universe: Sequence[Operation],
    max_h1: int = 3,
    max_h2: int = 2,
) -> EnumeratedRelation:
    """Derive the invalidated-by relation over a finite operation universe.

    Returns the enumerated relation containing every ``(q, p)`` such that a
    bounded witness shows ``p`` invalidates ``q``.  By Theorem 10 the full
    (unbounded) relation is a dependency relation; the bounded approximation
    may miss long-witness pairs, so callers verifying a paper table should
    also run :func:`repro.core.dependency.is_dependency_relation` on the
    result — the benchmark suite does both.
    """
    pairs: Set[Tuple[Operation, Operation]] = set()
    for p in universe:
        for q in universe:
            if invalidates(spec, p, q, universe, max_h1, max_h2):
                pairs.add((q, p))
    return EnumeratedRelation(pairs, name=f"invalidated-by({spec.name})")
