"""Binary relations on operations: dependency tables and lock conflicts.

The paper's lock conflict relations are binary relations on operations whose
membership may depend on operation names, arguments *and results* (e.g. a
``Deq`` returning ``v`` depends on an ``Enq`` of ``v' != v``).  This module
provides a small algebra of such relations:

* :class:`PredicateRelation` — membership given by a Python predicate;
  this is how the paper's parametric tables (Figures 4-1 .. 4-5, 7-1) are
  transcribed;
* :class:`EnumeratedRelation` — an explicit finite set of pairs; this is
  what the bounded derivations in :mod:`repro.core.invalidated_by` and
  :mod:`repro.core.commutativity` produce;
* combinators: union, difference, symmetric closure, restriction to a
  finite universe, and comparison helpers.

Conventions: ``relation.related(q, p)`` reads "``q`` depends on ``p``"
(row ``q``, column ``p`` in the paper's figures).  Lock *conflict* relations
must be symmetric (Section 5); they are typically obtained as the symmetric
closure of a dependency relation.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from .operations import Operation

__all__ = [
    "Relation",
    "PredicateRelation",
    "EnumeratedRelation",
    "CompiledRelation",
    "symmetric_closure",
    "union",
    "difference",
    "restrict",
    "is_symmetric",
    "EMPTY_RELATION",
    "TOTAL_RELATION",
]

Pair = Tuple[Operation, Operation]


class Relation:
    """A binary relation on operations.

    Subclasses implement :meth:`related`.  The operators ``|`` (union),
    ``-`` (difference) and the helpers below build derived relations.
    """

    #: Optional human-readable name, used by the table renderers.
    name: str = "relation"

    #: Lazily created per-instance memo for :meth:`pairs` (class-level
    #: None until the first enumeration; never shared across instances).
    _pairs_cache: Optional[Dict[Tuple[Operation, ...], FrozenSet[Pair]]] = None

    def related(self, q: Operation, p: Operation) -> bool:
        """True iff ``(q, p)`` is in the relation ("q depends on p")."""
        raise NotImplementedError

    def __contains__(self, pair: Pair) -> bool:
        q, p = pair
        return self.related(q, p)

    def __or__(self, other: "Relation") -> "Relation":
        return union(self, other)

    def __sub__(self, other: "Relation") -> "Relation":
        return difference(self, other)

    def pairs(self, universe: Sequence[Operation]) -> FrozenSet[Pair]:
        """All related pairs drawn from a finite operation universe.

        Enumerations over the same universe are memoised per relation
        instance: the bounded derivations (:mod:`repro.analysis.derive`,
        :mod:`repro.core.invalidated_by`,
        :mod:`repro.core.commutativity`) restrict the same paper tables
        repeatedly, and relations here are pure — membership depends
        only on the operation pair — so re-evaluating the |U|² predicate
        grid per enumeration is wasted work.
        """
        key = tuple(universe)
        cache = self._pairs_cache
        if cache is None:
            cache = {}
            # Instance attribute shadowing the class-level None:
            # subclasses need not call Relation.__init__.
            self._pairs_cache = cache
        try:
            hit = cache.get(key)
        except TypeError:  # unhashable operation payloads: no memo
            return self._enumerate_pairs(universe)
        if hit is None:
            hit = self._enumerate_pairs(universe)
            cache[key] = hit
        return hit

    def _enumerate_pairs(self, universe: Sequence[Operation]) -> FrozenSet[Pair]:
        return frozenset(
            (q, p) for q in universe for p in universe if self.related(q, p)
        )

    def restrict(self, universe: Sequence[Operation]) -> "EnumeratedRelation":
        """The relation restricted to a finite universe, enumerated."""
        return EnumeratedRelation(self.pairs(universe), name=self.name)


class PredicateRelation(Relation):
    """Relation whose membership is computed by a predicate.

    The predicate receives ``(q, p)`` and returns a bool.  Example, the
    File dependency relation of Figure 4-1 ("Read depends on Write when the
    values differ")::

        PredicateRelation(
            lambda q, p: q.name == "Read" and p.name == "Write"
                         and q.result != p.args[0],
            name="file-dependency",
        )
    """

    #: Memo entries are dropped wholesale past this size so a long-lived
    #: relation over an unbounded live workload cannot leak; paper
    #: universes are tiny, so the cap is never hit by the derivations.
    _MEMO_LIMIT = 65536

    def __init__(
        self,
        predicate: Callable[[Operation, Operation], bool],
        name: str = "relation",
        memoize: bool = True,
    ):
        self._predicate = predicate
        self._memo: Optional[Dict[Pair, bool]] = {} if memoize else None
        self.name = name

    def related(self, q: Operation, p: Operation) -> bool:
        """Memoised predicate evaluation.

        The paper's tables are pure functions of the operation pair, and
        both the machine's conflict check and the bounded derivations ask
        about the same pairs over and over — so the verdict is cached per
        ``(q, p)``.  Pairs with unhashable payloads fall back to a direct
        call.
        """
        memo = self._memo
        if memo is None:
            return bool(self._predicate(q, p))
        key = (q, p)
        try:
            hit = memo.get(key)
        except TypeError:  # unhashable operation arguments or results
            return bool(self._predicate(q, p))
        if hit is None:
            hit = bool(self._predicate(q, p))
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            memo[key] = hit
        return hit


class EnumeratedRelation(Relation):
    """Relation given by an explicit, finite set of pairs."""

    def __init__(self, pairs: Iterable[Pair] = (), name: str = "relation"):
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        self.name = name

    def related(self, q: Operation, p: Operation) -> bool:
        return (q, p) in self._pairs

    @property
    def pair_set(self) -> FrozenSet[Pair]:
        """The underlying set of pairs."""
        return self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self):
        return iter(self._pairs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EnumeratedRelation):
            return self._pairs == other._pairs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._pairs)

    def without(self, pair: Pair) -> "EnumeratedRelation":
        """A copy with one pair removed (used by minimality search)."""
        return EnumeratedRelation(self._pairs - {pair}, name=self.name)

    def __repr__(self) -> str:
        body = ", ".join(f"({q}, {p})" for q, p in sorted(self._pairs, key=str))
        return f"EnumeratedRelation({{{body}}})"


class CompiledRelation(Relation):
    """Relation compiled to bitmask tests over a finite operation universe.

    ``repro.core.compile`` assigns every operation in the declared universe
    a small integer id and precomputes, for each row ``q``, one integer
    whose ``p``-th bit says whether ``(q, p)`` is related.  A membership
    query is then two dict probes and a shift — no predicate dispatch, no
    memo-key tuple allocation, and (unlike :class:`PredicateRelation`'s
    memo) no eviction cliff.

    Operations outside the compiled universe (a live workload is not
    bounded by the derivation domain) fall back to the reference relation
    the table was compiled from, so a ``CompiledRelation`` is a drop-in
    replacement: agreement on the universe is enforced by the REP107/108
    lint rules and ``repro compile --check``, and everywhere else the
    answer *is* the reference's answer.
    """

    def __init__(
        self,
        universe: Sequence[Operation],
        masks: Sequence[int],
        name: str = "compiled",
        fallback: Optional[Relation] = None,
    ):
        if len(universe) != len(masks):
            raise ValueError(
                f"universe has {len(universe)} operations but "
                f"{len(masks)} row masks were supplied"
            )
        self._ids: Dict[Operation, int] = {
            op: index for index, op in enumerate(universe)
        }
        self._universe: Tuple[Operation, ...] = tuple(universe)
        self._masks: Tuple[int, ...] = tuple(masks)
        self.fallback = fallback
        self.name = name

    def related(self, q: Operation, p: Operation) -> bool:
        ids = self._ids
        try:
            iq = ids.get(q)
            ip = ids.get(p)
        except TypeError:  # unhashable operation arguments or results
            iq = ip = None
        if iq is None or ip is None:
            fallback = self.fallback
            if fallback is not None:
                return fallback.related(q, p)
            return False
        return self._masks[iq] >> ip & 1 != 0

    @property
    def universe(self) -> Tuple[Operation, ...]:
        """The compiled operation universe, in id order."""
        return self._universe

    @property
    def masks(self) -> Tuple[int, ...]:
        """Row bitmasks, one per universe operation."""
        return self._masks

    def __repr__(self) -> str:
        return (
            f"CompiledRelation(name={self.name!r}, "
            f"universe={len(self._universe)} ops, "
            f"fallback={getattr(self.fallback, 'name', None)!r})"
        )


class _Union(Relation):
    def __init__(self, parts: Sequence[Relation], name: str):
        self._parts = tuple(parts)
        self.name = name

    def related(self, q: Operation, p: Operation) -> bool:
        return any(part.related(q, p) for part in self._parts)


class _Difference(Relation):
    def __init__(self, left: Relation, right: Relation, name: str):
        self._left = left
        self._right = right
        self.name = name

    def related(self, q: Operation, p: Operation) -> bool:
        return self._left.related(q, p) and not self._right.related(q, p)


class _Symmetric(Relation):
    def __init__(self, base: Relation, name: str):
        self._base = base
        self.name = name

    def related(self, q: Operation, p: Operation) -> bool:
        return self._base.related(q, p) or self._base.related(p, q)


def union(*relations: Relation, name: str = "union") -> Relation:
    """The union of several relations."""
    enumerated = [r for r in relations if isinstance(r, EnumeratedRelation)]
    if len(enumerated) == len(relations):
        pairs: Set[Pair] = set()
        for r in enumerated:
            pairs |= r.pair_set
        return EnumeratedRelation(pairs, name=name)
    return _Union(relations, name)


def difference(left: Relation, right: Relation, name: str = "difference") -> Relation:
    """Pairs in ``left`` but not in ``right``."""
    if isinstance(left, EnumeratedRelation) and isinstance(right, EnumeratedRelation):
        return EnumeratedRelation(left.pair_set - right.pair_set, name=name)
    return _Difference(left, right, name)


def symmetric_closure(relation: Relation, name: str = "") -> Relation:
    """The smallest symmetric relation containing ``relation``.

    Lock conflict relations are "typically constructed by taking the
    symmetric closure of a dependency relation" (Section 4.3).
    """
    label = name or f"sym({relation.name})"
    if isinstance(relation, EnumeratedRelation):
        pairs = set(relation.pair_set)
        pairs |= {(p, q) for q, p in relation.pair_set}
        return EnumeratedRelation(pairs, name=label)
    return _Symmetric(relation, label)


def restrict(relation: Relation, universe: Sequence[Operation]) -> EnumeratedRelation:
    """Enumerate ``relation`` over a finite universe (module-level alias)."""
    return relation.restrict(universe)


def is_symmetric(relation: Relation, universe: Sequence[Operation]) -> bool:
    """Check symmetry of ``relation`` over a finite universe."""
    return all(
        relation.related(p, q) == relation.related(q, p)
        for q in universe
        for p in universe
    )


#: The empty relation — no pairs related (every operation freely concurrent).
EMPTY_RELATION = EnumeratedRelation((), name="empty")


class _Total(Relation):
    name = "total"

    def related(self, q: Operation, p: Operation) -> bool:
        return True


#: The total relation — everything conflicts (serial execution).
TOTAL_RELATION = _Total()
