"""Core formal model: operations, histories, dependency, the LOCK machine.

Everything in this package is a direct transcription of a definition,
lemma, or algorithm from the paper; the docstring of each module cites the
section it implements.
"""

from .atomicity import (
    is_acceptable,
    is_atomic,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
    is_online_hybrid_atomic_at,
    is_serializable,
    is_serializable_in_order,
    timestamps_respect_precedes,
)
from .commutativity import (
    CommuteCounterexample,
    commute,
    failure_to_commute,
    find_commute_counterexample,
)
from .compaction import NEG_INFINITY, CompactingLockMachine
from .conflict import (
    EMPTY_RELATION,
    TOTAL_RELATION,
    CompiledRelation,
    EnumeratedRelation,
    PredicateRelation,
    Relation,
    difference,
    is_symmetric,
    restrict,
    symmetric_closure,
    union,
)
from .dependency import (
    DependencyViolation,
    check_dependency_relation,
    check_lemma4,
    find_minimal_dependency_relations,
    is_dependency_relation,
    is_r_closed,
    is_view,
)
from .dependency import is_minimal_dependency_relation
from .errors import (
    IllegalOperation,
    LockConflict,
    ProtocolError,
    ReproError,
    TransactionAborted,
    WouldBlock,
)
from .events import (
    AbortEvent,
    CommitEvent,
    Event,
    InvocationEvent,
    ResponseEvent,
    is_completion,
)
from .history import History, HistoryBuilder, WellFormednessError
from .invalidated_by import (
    InvalidationWitness,
    find_invalidation_witness,
    invalidated_by,
    invalidates,
)
from .lock_machine import LockMachine
from .operations import Invocation, Operation, OperationSequence, op
from .specs import SerialSpec, StateSet, enumerate_legal_sequences
from .timestamps import (
    LogicalClock,
    MonotoneTimestampGenerator,
    SkewedTimestampGenerator,
    TimestampGenerator,
)

__all__ = [
    # operations / events / histories
    "Invocation",
    "Operation",
    "OperationSequence",
    "op",
    "InvocationEvent",
    "ResponseEvent",
    "CommitEvent",
    "AbortEvent",
    "Event",
    "is_completion",
    "History",
    "HistoryBuilder",
    "WellFormednessError",
    # specs
    "SerialSpec",
    "StateSet",
    "enumerate_legal_sequences",
    # relations
    "Relation",
    "PredicateRelation",
    "EnumeratedRelation",
    "CompiledRelation",
    "symmetric_closure",
    "union",
    "difference",
    "restrict",
    "is_symmetric",
    "EMPTY_RELATION",
    "TOTAL_RELATION",
    # dependency machinery
    "DependencyViolation",
    "check_dependency_relation",
    "is_dependency_relation",
    "is_minimal_dependency_relation",
    "find_minimal_dependency_relations",
    "is_r_closed",
    "is_view",
    "check_lemma4",
    "InvalidationWitness",
    "find_invalidation_witness",
    "invalidated_by",
    "invalidates",
    "CommuteCounterexample",
    "commute",
    "failure_to_commute",
    "find_commute_counterexample",
    # atomicity
    "is_acceptable",
    "is_serializable",
    "is_serializable_in_order",
    "is_atomic",
    "is_hybrid_atomic",
    "is_online_hybrid_atomic",
    "is_online_hybrid_atomic_at",
    "timestamps_respect_precedes",
    # machines
    "LockMachine",
    "CompactingLockMachine",
    "NEG_INFINITY",
    # timestamps
    "LogicalClock",
    "TimestampGenerator",
    "MonotoneTimestampGenerator",
    "SkewedTimestampGenerator",
    # errors
    "ReproError",
    "ProtocolError",
    "LockConflict",
    "WouldBlock",
    "IllegalOperation",
    "TransactionAborted",
]
