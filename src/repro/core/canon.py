"""Canonical encodings of abstract states (deterministic total order).

Several places need to order abstract states deterministically: the
serial specification's ``results_for`` ("choose a result consistent with
the view", Section 4.1) iterates a state-*set* and must pick results in
an order that does not depend on hash seeds or container iteration
order, and the observability codec sorts set elements when serialising
trace payloads.  Keying these sorts on ``repr`` is not stable: the
``repr`` of a ``frozenset`` (the Set/Directory ADT states) lists
elements in hash-iteration order, which varies with ``PYTHONHASHSEED``
and across Python versions — so "choose a result consistent with the
view" could flip between runs.

:func:`canonical_key` maps any value built from the canonical immutable
shapes the specifications use (numbers, strings, tuples, frozensets,
and the few extras the codec handles) to a string such that equal
values get equal keys and the key depends only on the value, never on
insertion or iteration order.  Keys are type-tagged so values of
different types never collide (``1`` vs ``True`` vs ``"1"``).

For values outside the canonical vocabulary the key falls back to
``repr`` — lossy ordering, but no worse than the previous behaviour,
and none of the in-tree specifications hit the fallback.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

__all__ = ["canonical_key"]


def canonical_key(value: Any) -> str:
    """A deterministic, iteration-order-independent sort key for ``value``.

    Equal same-type values built from the canonical state vocabulary
    receive equal keys; distinct values receive distinct keys.  (Equal
    cross-type numerics like ``1`` and ``1.0`` key differently, but a
    set never holds both, so sorts stay deterministic.)  Keys are plain
    strings, so any mix of states can be sorted together.
    """
    if value is None:
        return "n:"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value:024d}" if value >= 0 else f"i-:{-value:024d}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, Fraction):
        return f"q:{value.numerator}/{value.denominator}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, bytes):
        return f"y:{value!r}"
    if isinstance(value, tuple):
        return "t:(" + ",".join(canonical_key(item) for item in value) + ")"
    if isinstance(value, (frozenset, set)):
        return (
            "fs:{" + ",".join(sorted(canonical_key(item) for item in value)) + "}"
        )
    if isinstance(value, list):
        return "l:[" + ",".join(canonical_key(item) for item in value) + "]"
    if isinstance(value, dict):
        pairs = sorted(
            (canonical_key(key), canonical_key(item))
            for key, item in value.items()
        )
        return "d:{" + ",".join(f"{k}={v}" for k, v in pairs) + "}"
    return f"r:{value!r}"
