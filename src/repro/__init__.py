"""repro — Hybrid Concurrency Control for Abstract Data Types.

A complete reproduction of Herlihy & Weihl's 1988 hybrid concurrency
control paper: the formal event/history model, dependency relations and
their mechanical derivation from serial specifications, the LOCK state
machine with horizon-based compaction, commit-timestamp generation, a
transaction runtime with atomic commitment, baseline protocols
(commutativity locking, read/write 2PL), an ADT library, a durability
subsystem (write-ahead intentions logs, horizon checkpoints, and
crash recovery — see :mod:`repro.recovery`), and a discrete-event
simulation harness for the concurrency comparisons.

Quick start::

    from repro import TransactionManager
    from repro.adts import make_account_adt

    manager = TransactionManager()
    manager.create_object("checking", make_account_adt())

    def deposit(ctx):
        ctx.invoke("checking", "Credit", 100)

    manager.run_transaction(deposit)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
reproduction of every figure in the paper.
"""

from .core import (
    CompactingLockMachine,
    EnumeratedRelation,
    History,
    HistoryBuilder,
    IllegalOperation,
    Invocation,
    LockConflict,
    LockMachine,
    MonotoneTimestampGenerator,
    Operation,
    PredicateRelation,
    ProtocolError,
    Relation,
    ReproError,
    SerialSpec,
    SkewedTimestampGenerator,
    TransactionAborted,
    WouldBlock,
    check_dependency_relation,
    commute,
    failure_to_commute,
    invalidated_by,
    is_atomic,
    is_dependency_relation,
    is_hybrid_atomic,
    is_online_hybrid_atomic,
    is_serializable,
    op,
    symmetric_closure,
)
from .protocols import ALL_PROTOCOLS, COMMUTATIVITY, HYBRID, SERIAL, TWO_PHASE_RW
from .runtime import TransactionContext, TransactionManager

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Operation",
    "Invocation",
    "op",
    "History",
    "HistoryBuilder",
    "SerialSpec",
    # relations / derivation
    "Relation",
    "PredicateRelation",
    "EnumeratedRelation",
    "symmetric_closure",
    "invalidated_by",
    "failure_to_commute",
    "commute",
    "is_dependency_relation",
    "check_dependency_relation",
    # machines
    "LockMachine",
    "CompactingLockMachine",
    # atomicity
    "is_atomic",
    "is_hybrid_atomic",
    "is_online_hybrid_atomic",
    "is_serializable",
    # timestamps
    "MonotoneTimestampGenerator",
    "SkewedTimestampGenerator",
    # runtime
    "TransactionManager",
    "TransactionContext",
    # protocols
    "HYBRID",
    "COMMUTATIVITY",
    "TWO_PHASE_RW",
    "SERIAL",
    "ALL_PROTOCOLS",
    # errors
    "ReproError",
    "ProtocolError",
    "LockConflict",
    "WouldBlock",
    "IllegalOperation",
    "TransactionAborted",
]
