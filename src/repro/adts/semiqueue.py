"""The SemiQueue type (paper, Section 4.3, Figure 4-4).

A SemiQueue weakens the FIFO queue by *non-determinism*: ``Ins(v) -> Ok``
inserts an item and ``Rem() -> v`` removes and returns **some** item
(blocking while empty).  Introducing non-determinism into the sequential
specification relaxes the constraints on concurrency; the SemiQueue has a
unique minimal dependency relation::

    (row dep col)    Ins(v'), Ok    Rem, v'
    Ins(v), Ok
    Rem, v                          v == v'

Only removals of the *same* item conflict: insertions run concurrently
with everything, and removals of distinct items run concurrently with each
other.  (Compare with the queue's Figures 4-2/4-3 — the paper's point that
"non-deterministic operations are an important source of concurrency".)
For the SemiQueue, failure-to-commute coincides with this relation, so
hybrid and commutativity protocols tie — the win comes from the
specification, and the comparison benchmark shows both beat the FIFO queue.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "SemiQueueSpec",
    "ins",
    "rem",
    "SEMIQUEUE_DEPENDENCY",
    "SEMIQUEUE_CONFLICT",
    "SEMIQUEUE_COMMUTATIVITY_CONFLICT",
    "semiqueue_universe",
    "make_semiqueue_adt",
]


def ins(value: Any) -> Operation:
    """The operation ``[Ins(value), Ok]``."""
    return Operation(Invocation("Ins", (value,)), "Ok")


def rem(value: Any) -> Operation:
    """The operation ``[Rem(), value]``."""
    return Operation(Invocation("Rem"), value)


class SemiQueueSpec(SerialSpec):
    """Serial spec: state is a multiset; Rem non-deterministically removes
    any present item, blocking while the multiset is empty."""

    name = "SemiQueue"

    def initial_state(self) -> Hashable:
        return ()

    @staticmethod
    def _add(state: Tuple[Any, ...], value: Any) -> Tuple[Any, ...]:
        # Canonical multiset representation: sorted tuple (by repr for
        # heterogeneous values).
        return tuple(sorted(state + (value,), key=repr))

    @staticmethod
    def _remove(state: Tuple[Any, ...], value: Any) -> Tuple[Any, ...]:
        items = list(state)
        items.remove(value)
        return tuple(items)

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        items: Tuple[Any, ...] = state
        if invocation.name == "Ins":
            (value,) = invocation.args
            return [("Ok", self._add(items, value))]
        if invocation.name == "Rem":
            # One outcome per *distinct* item present (non-determinism).
            seen = []
            outs = []
            for value in items:
                if value not in seen:
                    seen.append(value)
                    outs.append((value, self._remove(items, value)))
            return outs
        return []


def _semiqueue_dep(q: Operation, p: Operation) -> bool:
    # Rem(v) depends on Rem(v') exactly when v == v'.
    return q.name == "Rem" and p.name == "Rem" and q.result == p.result


#: Figure 4-4: the unique minimal dependency relation for SemiQueue.
SEMIQUEUE_DEPENDENCY = PredicateRelation(
    _semiqueue_dep, name="SemiQueue dependency (Fig 4-4)"
)

#: Hybrid lock conflicts (already symmetric).
SEMIQUEUE_CONFLICT = symmetric_closure(
    SEMIQUEUE_DEPENDENCY, name="SemiQueue conflicts (hybrid)"
)

#: Failure-to-commute coincides with the dependency relation here.
SEMIQUEUE_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    lambda q, p: _semiqueue_dep(q, p) or _semiqueue_dep(p, q),
    name="SemiQueue conflicts (commutativity)",
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": SEMIQUEUE_CONFLICT,
    "COMMUTATIVITY_CONFLICT": SEMIQUEUE_COMMUTATIVITY_CONFLICT,
}


def semiqueue_universe(values: Sequence[Any] = (1, 2)) -> List[Operation]:
    """Every Ins/Rem operation over a finite value domain."""
    ops: List[Operation] = []
    for v in values:
        ops.append(ins(v))
        ops.append(rem(v))
    return ops


def make_semiqueue_adt() -> ADT:
    """Bundle the SemiQueue type."""
    return ADT(
        name="SemiQueue",
        spec=SemiQueueSpec(),
        dependency=SEMIQUEUE_DEPENDENCY,
        conflict=load_compiled("semiqueue", "CONFLICT", SEMIQUEUE_CONFLICT),
        commutativity_conflict=load_compiled(
            "semiqueue", "COMMUTATIVITY_CONFLICT", SEMIQUEUE_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: False,
        universe=semiqueue_universe,
    )


register("SemiQueue", make_semiqueue_adt)
