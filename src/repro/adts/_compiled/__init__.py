"""Loader for the generated conflict-table modules in this package.

The sibling modules (``account.py``, ``counter.py``, ...) are *generated*
by ``python -m repro compile`` from the hand-written tables in
:mod:`repro.adts` — each holds one type's operation universe and its
conflict tables as per-row bitmasks, plus a content digest.  This
``__init__`` is the only hand-written file here: it turns those tables
into :class:`~repro.core.conflict.CompiledRelation` instances for the
ADT factories.

The loader is deliberately forgiving: a missing or shapeless generated
module simply yields the hand-written fallback relation, so the package
keeps working from a fresh checkout before the first compile, and the
mutation/lint suites can exercise broken trees.  *Staleness* (a generated
table that disagrees with a fresh derivation) is not silently tolerated —
it is caught by lint rule REP108 and ``repro compile --check`` in CI.
"""

from __future__ import annotations

from importlib import import_module
from typing import Dict, Optional, Tuple

from ...core.conflict import CompiledRelation, Relation
from ...core.operations import Operation

__all__ = ["load_compiled"]

#: Parsed per-module data, keyed by module stem: None marks a module that
#: failed to import so the fallback path does not retry on every factory
#: call.
_MODULES: Dict[str, Optional[object]] = {}


def _module(stem: str) -> Optional[object]:
    if stem not in _MODULES:
        try:
            _MODULES[stem] = import_module(f".{stem}", __name__)
        except ImportError:
            _MODULES[stem] = None
    return _MODULES[stem]


def load_compiled(stem: str, table: str, fallback: Relation) -> Relation:
    """The compiled relation for ``table`` in generated module ``stem``.

    Returns ``fallback`` unchanged when no usable generated table exists.
    The compiled relation keeps the fallback's name (trace events and
    artifacts key on relation names) and uses it to answer queries about
    operations outside the compiled universe.
    """
    module = _module(stem)
    if module is None:
        return fallback
    universe: Optional[Tuple[Operation, ...]] = getattr(module, "UNIVERSE", None)
    masks: Optional[Tuple[int, ...]] = getattr(module, f"{table}_MASKS", None)
    if universe is None or masks is None or len(universe) != len(masks):
        return fallback
    return CompiledRelation(
        universe, masks, name=fallback.name, fallback=fallback
    )
