"""A bounded Counter type (library extension, derived with the paper's
machinery).

The Counter is not one of the paper's worked examples; it is included to
show the derivation pipeline applied to a fresh type, mixing an
observer with partial-failure updates::

    Inc  = Operation(Nat)                 # value += n
    Dec  = Operation(Nat) Signals(Floor)  # value -= n, or Floor unchanged
    Read = Operation() Returns(Nat)       # observe the value

``Dec`` refuses to drive the counter negative (like Debit's Overdraft).
The invalidated-by relation, derived mechanically and verified by the test
suite, is::

    (row dep col)   Inc(n)   Dec(n),Ok   Dec(n),Floor   Read,v'
    Inc(m)
    Dec(m),Ok                true
    Dec(m),Floor    true
    Read,v          true     v >= n      (never)        (never)

Reads depend on every state-changing operation (with value-sensitive
conditions); increments never depend on anything, so — as with File writes
and Queue enqueues — *concurrent increments* are admitted by the hybrid
protocol even though "Inc; Read" histories order them observably.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "CounterSpec",
    "inc",
    "dec_ok",
    "dec_floor",
    "read_counter",
    "FLOOR",
    "COUNTER_DEPENDENCY",
    "COUNTER_CONFLICT",
    "COUNTER_COMMUTATIVITY_CONFLICT",
    "counter_universe",
    "make_counter_adt",
]

#: The exceptional Dec result.
FLOOR = "Floor"


def inc(amount: int) -> Operation:
    """The operation ``[Inc(amount), Ok]``."""
    return Operation(Invocation("Inc", (int(amount),)), "Ok")


def dec_ok(amount: int) -> Operation:
    """The operation ``[Dec(amount), Ok]`` (a successful decrement)."""
    return Operation(Invocation("Dec", (int(amount),)), "Ok")


def dec_floor(amount: int) -> Operation:
    """The operation ``[Dec(amount), Floor]`` (a refused decrement)."""
    return Operation(Invocation("Dec", (int(amount),)), FLOOR)


def read_counter(value: int) -> Operation:
    """The operation ``[Read(), value]``."""
    return Operation(Invocation("Read"), int(value))


class CounterSpec(SerialSpec):
    """Serial spec over non-negative integer counters."""

    name = "Counter"

    def __init__(self, initial: int = 0):
        if initial < 0:
            raise ValueError("counter value must be non-negative")
        self._initial = int(initial)

    def initial_state(self) -> Hashable:
        return self._initial

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        value: int = state
        if invocation.name == "Inc":
            (amount,) = invocation.args
            return [("Ok", value + amount)]
        if invocation.name == "Dec":
            (amount,) = invocation.args
            if value >= amount:
                return [("Ok", value - amount)]
            return [(FLOOR, value)]
        if invocation.name == "Read":
            return [(value, value)]
        return []


def _counter_dep(q: Operation, p: Operation) -> bool:
    if q.name == "Dec" and q.result == "Ok":
        return p.name == "Dec" and p.result == "Ok"
    if q.name == "Dec" and q.result == FLOOR:
        return p.name == "Inc"
    if q.name == "Read":
        # A read depends on operations that change the value it returned.
        # A successful Dec(n) can only have produced the observed value v
        # when v >= n (the with-Dec run must stay non-negative and agree
        # with the without-Dec run on every intermediate result).
        if p.name == "Inc":
            return True
        if p.name == "Dec" and p.result == "Ok":
            return q.result >= p.args[0]
        return False
    return False


#: Minimal dependency relation for Counter (machine-verified in tests).
COUNTER_DEPENDENCY = PredicateRelation(_counter_dep, name="Counter dependency")

#: Hybrid lock conflicts for Counter.
COUNTER_CONFLICT = symmetric_closure(COUNTER_DEPENDENCY, name="Counter conflicts (hybrid)")


def _counter_mc(q: Operation, p: Operation) -> bool:
    # Failure to commute adds nothing over the symmetric closure except
    # read/read stays free and inc/inc commute (addition commutes), but
    # reads fail to commute with updates, and Dec,Ok with Dec,Ok / Inc with
    # Dec,Floor exactly as in the dependency closure.
    return _counter_dep(q, p) or _counter_dep(p, q)


#: Failure-to-commute conflicts — for Counter these coincide with the
#: symmetric closure of the dependency relation (no Post-like operation).
COUNTER_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    _counter_mc, name="Counter conflicts (commutativity)"
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles for
#: this module; the factories load the compiled bitset versions with
#: these hand-written relations as the out-of-universe fallback.
COMPILED_TABLES = {
    "CONFLICT": COUNTER_CONFLICT,
    "COMMUTATIVITY_CONFLICT": COUNTER_COMMUTATIVITY_CONFLICT,
}


def counter_universe(
    amounts: Sequence[int] = (1, 2), values: Sequence[int] = (0, 1, 2)
) -> List[Operation]:
    """Every Inc/Dec/Read operation over finite domains."""
    ops: List[Operation] = []
    for amount in amounts:
        ops.append(inc(amount))
        ops.append(dec_ok(amount))
        ops.append(dec_floor(amount))
    for value in values:
        ops.append(read_counter(value))
    return ops


def make_counter_adt(initial: int = 0) -> ADT:
    """Bundle the Counter type."""
    return ADT(
        name="Counter",
        spec=CounterSpec(initial),
        dependency=COUNTER_DEPENDENCY,
        conflict=load_compiled("counter", "CONFLICT", COUNTER_CONFLICT),
        commutativity_conflict=load_compiled(
            "counter", "COMMUTATIVITY_CONFLICT", COUNTER_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: operation.name == "Read",
        universe=counter_universe,
    )


register("Counter", make_counter_adt)
