"""A bounded FIFO queue (library extension) — a cautionary derivation.

``Enq(v) -> Ok`` blocks while the queue holds ``capacity`` items; ``Deq``
blocks while it is empty.  Making Enq *partial* changes everything: an
enqueue can now invalidate another enqueue (by filling the queue), so the
derived invalidated-by relation is::

    (row dep col)    Enq(v'), Ok    Deq, v'
    Enq(v), Ok       true
    Deq, v           v != v'        v == v'

and the unbounded queue's headline optimisation — conflict-free
concurrent enqueues (Figure 4-2) — is gone.

More interesting still, invalidated-by is **not minimal** in spirit here:
the failure-to-commute relation::

    (row dep col)    Enq(v'), Ok    Deq, v'
    Enq(v), Ok       true
    Deq, v                          v == v'

is also a dependency relation (Theorem 28) and is a strict subset of
invalidated-by's symmetric closure — it drops the Deq/Enq conflicts.  The
bundle therefore *locks* with the commutativity-shaped table (exposed as
the alternative ``"mc"``) while still declaring invalidated-by as the
canonical derived dependency, a worked example that the invalidated-by
recipe is sufficient but not always the best choice (the paper:
"invalidated-by ... need not be a minimal dependency relation").
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "BoundedQueueSpec",
    "benq",
    "bdeq",
    "BOUNDED_QUEUE_DEPENDENCY",
    "BOUNDED_QUEUE_MC_DEPENDENCY",
    "BOUNDED_QUEUE_CONFLICT",
    "BOUNDED_QUEUE_COMMUTATIVITY_CONFLICT",
    "bounded_queue_universe",
    "make_bounded_queue_adt",
]


def benq(value: Any) -> Operation:
    """The operation ``[Enq(value), Ok]``."""
    return Operation(Invocation("Enq", (value,)), "Ok")


def bdeq(value: Any) -> Operation:
    """The operation ``[Deq(), value]``."""
    return Operation(Invocation("Deq"), value)


class BoundedQueueSpec(SerialSpec):
    """FIFO with capacity; both operations are partial."""

    name = "BoundedQueue"

    def __init__(self, capacity: int = 2):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity

    def initial_state(self) -> Hashable:
        return ()

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        items: Tuple[Any, ...] = state
        if invocation.name == "Enq":
            if len(items) >= self.capacity:
                return []  # partial: blocks while full
            (value,) = invocation.args
            return [("Ok", items + (value,))]
        if invocation.name == "Deq":
            if not items:
                return []  # partial: blocks while empty
            return [(items[0], items[1:])]
        return []


def _invalidated_by(q: Operation, p: Operation) -> bool:
    if q.name == "Enq":
        return p.name == "Enq"  # p may fill the queue
    if q.name == "Deq":
        if p.name == "Enq":
            return q.result != p.args[0]
        return q.result == p.result
    return False


def _mc(q: Operation, p: Operation) -> bool:
    if q.name == "Enq" and p.name == "Enq":
        return True  # ordering observable AND fullness interference
    if q.name == "Deq" and p.name == "Deq":
        return q.result == p.result
    return False


#: The derived invalidated-by relation (NOT the tightest choice here).
BOUNDED_QUEUE_DEPENDENCY = PredicateRelation(
    _invalidated_by, name="BoundedQueue invalidated-by"
)

#: The commutativity-shaped relation: also a dependency relation, and a
#: strict subset of invalidated-by's closure — the better lock table.
BOUNDED_QUEUE_MC_DEPENDENCY = PredicateRelation(
    _mc, name="BoundedQueue dependency (MC-shaped)"
)

#: The bundle locks with the tighter table.
BOUNDED_QUEUE_CONFLICT = symmetric_closure(
    BOUNDED_QUEUE_MC_DEPENDENCY, name="BoundedQueue conflicts (hybrid)"
)

#: Failure-to-commute coincides with the MC-shaped relation.
BOUNDED_QUEUE_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    lambda q, p: _mc(q, p) or _mc(p, q),
    name="BoundedQueue conflicts (commutativity)",
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": BOUNDED_QUEUE_CONFLICT,
    "COMMUTATIVITY_CONFLICT": BOUNDED_QUEUE_COMMUTATIVITY_CONFLICT,
}


def bounded_queue_universe(values: Sequence[Any] = (1, 2)) -> List[Operation]:
    """Every Enq/Deq operation over a finite value domain."""
    ops: List[Operation] = []
    for v in values:
        ops.append(benq(v))
        ops.append(bdeq(v))
    return ops


def make_bounded_queue_adt(capacity: int = 2) -> ADT:
    """Bundle the bounded queue."""
    return ADT(
        name="BoundedQueue",
        spec=BoundedQueueSpec(capacity),
        dependency=BOUNDED_QUEUE_DEPENDENCY,
        conflict=load_compiled("bounded_queue", "CONFLICT", BOUNDED_QUEUE_CONFLICT),
        commutativity_conflict=load_compiled(
            "bounded_queue",
            "COMMUTATIVITY_CONFLICT",
            BOUNDED_QUEUE_COMMUTATIVITY_CONFLICT,
        ),
        is_read=lambda operation: False,
        universe=bounded_queue_universe,
        alternative_dependencies={"mc": BOUNDED_QUEUE_MC_DEPENDENCY},
    )


register("BoundedQueue", make_bounded_queue_adt)
