"""The FIFO Queue type (paper, Section 4.3, Figures 4-2 and 4-3).

``Enq(v) -> Ok`` places an item at the end of the queue; ``Deq() -> v``
removes and returns the item at the front, *blocking* when the queue is
empty (a partial operation).

The queue is the paper's flagship example: it has **two distinct minimal
dependency relations**, whose symmetric closures impose *incomparable*
constraints on concurrency.

Figure 4-2 (the invalidated-by relation)::

    (row dep col)    Enq(v'), Ok    Deq, v'
    Enq(v), Ok
    Deq, v           v != v'        v == v'

Dequeues cannot run concurrently with other dequeues or enqueues, but
**enqueues can run concurrently with one another** even though they do not
commute — the commit timestamps decide the dequeue order.  No
commutativity-based protocol admits this.

Figure 4-3 (the commutativity-shaped relation)::

    (row dep col)    Enq(v'), Ok    Deq, v'
    Enq(v), Ok       v != v'
    Deq, v                          v == v'

Enqueues of different items depend on each other and dequeues of the same
item depend on each other, but dequeues do not depend on enqueues (and vice
versa): a dequeuing transaction may run concurrently with an enqueuing one
as long as it dequeues items enqueued by *committed* transactions.  The
symmetric closure of Figure 4-3 coincides with the failure-to-commute
relation, so this choice reproduces Weihl's commutativity-based scheme.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "FifoQueueSpec",
    "enq",
    "deq",
    "QUEUE_DEPENDENCY_FIG42",
    "QUEUE_DEPENDENCY_FIG43",
    "QUEUE_CONFLICT_FIG42",
    "QUEUE_CONFLICT_FIG43",
    "QUEUE_COMMUTATIVITY_CONFLICT",
    "queue_universe",
    "make_queue_adt",
]


def enq(value: Any) -> Operation:
    """The operation ``[Enq(value), Ok]``."""
    return Operation(Invocation("Enq", (value,)), "Ok")


def deq(value: Any) -> Operation:
    """The operation ``[Deq(), value]``."""
    return Operation(Invocation("Deq"), value)


class FifoQueueSpec(SerialSpec):
    """Serial specification: first-in first-out; Deq is partial on empty."""

    name = "FIFOQueue"

    def initial_state(self) -> Hashable:
        return ()

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        items: Tuple[Any, ...] = state
        if invocation.name == "Enq":
            (value,) = invocation.args
            return [("Ok", items + (value,))]
        if invocation.name == "Deq":
            if not items:
                return []  # partial: blocks on an empty queue
            return [(items[0], items[1:])]
        return []


def _fig42(q: Operation, p: Operation) -> bool:
    # Deq(v) depends on Enq(v') when v != v', and on Deq(v') when v == v'.
    if q.name != "Deq":
        return False
    if p.name == "Enq":
        return q.result != p.args[0]
    if p.name == "Deq":
        return q.result == p.result
    return False


def _fig43(q: Operation, p: Operation) -> bool:
    # Enq(v) depends on Enq(v') when v != v'; Deq(v) on Deq(v') when v == v'.
    if q.name == "Enq" and p.name == "Enq":
        return q.args[0] != p.args[0]
    if q.name == "Deq" and p.name == "Deq":
        return q.result == p.result
    return False


#: Figure 4-2: first minimal dependency relation (= invalidated-by).
QUEUE_DEPENDENCY_FIG42 = PredicateRelation(_fig42, name="Queue dependency (Fig 4-2)")

#: Figure 4-3: second minimal dependency relation.
QUEUE_DEPENDENCY_FIG43 = PredicateRelation(_fig43, name="Queue dependency (Fig 4-3)")

#: Hybrid lock conflicts from Figure 4-2: concurrent Enqs allowed.
QUEUE_CONFLICT_FIG42 = symmetric_closure(
    QUEUE_DEPENDENCY_FIG42, name="Queue conflicts (hybrid, Fig 4-2)"
)

#: Lock conflicts from Figure 4-3: Enq-Enq conflicts, Deq free of Enq.
QUEUE_CONFLICT_FIG43 = symmetric_closure(
    QUEUE_DEPENDENCY_FIG43, name="Queue conflicts (Fig 4-3)"
)

#: Failure-to-commute conflicts — identical to Figure 4-3's closure
#: (Section 7.1 notes the coincidence), already symmetric.
QUEUE_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    lambda q, p: _fig43(q, p) or _fig43(p, q),
    name="Queue conflicts (commutativity)",
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles —
#: both minimal conflict relations, since the factory can load either.
COMPILED_TABLES = {
    "CONFLICT_FIG42": QUEUE_CONFLICT_FIG42,
    "CONFLICT_FIG43": QUEUE_CONFLICT_FIG43,
    "COMMUTATIVITY_CONFLICT": QUEUE_COMMUTATIVITY_CONFLICT,
}


def queue_universe(values: Sequence[Any] = (1, 2)) -> List[Operation]:
    """Every Enq/Deq operation over a finite value domain."""
    ops: List[Operation] = []
    for v in values:
        ops.append(enq(v))
        ops.append(deq(v))
    return ops


def make_queue_adt(dependency: str = "fig42") -> ADT:
    """Bundle the queue.

    ``dependency`` selects which minimal dependency relation drives the
    hybrid protocol: ``"fig42"`` (concurrent enqueues — the choice that
    showcases hybrid's extra concurrency) or ``"fig43"``.
    """
    if dependency == "fig42":
        dep, conflict = QUEUE_DEPENDENCY_FIG42, QUEUE_CONFLICT_FIG42
    elif dependency == "fig43":
        dep, conflict = QUEUE_DEPENDENCY_FIG43, QUEUE_CONFLICT_FIG43
    else:
        raise ValueError("dependency must be 'fig42' or 'fig43'")
    return ADT(
        name="FIFOQueue",
        spec=FifoQueueSpec(),
        dependency=dep,
        conflict=load_compiled(
            "queue", f"CONFLICT_{dependency.upper()}", conflict
        ),
        commutativity_conflict=load_compiled(
            "queue", "COMMUTATIVITY_CONFLICT", QUEUE_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: False,  # both Enq and Deq mutate
        universe=queue_universe,
        alternative_dependencies={
            "fig42": QUEUE_DEPENDENCY_FIG42,
            "fig43": QUEUE_DEPENDENCY_FIG43,
        },
    )


register("FIFOQueue", make_queue_adt)
