"""A Directory (key-value map) type (library extension, derived with the
paper's machinery).

The Directory is the richest type in the library, combining partial-failure
updates with result-bearing observers over a keyed space::

    Bind   = Operation(Key, Value) Signals(Duplicate)  # insert fresh binding
    Rebind = Operation(Key, Value) Signals(Missing)    # overwrite binding
    Unbind = Operation(Key)        Signals(Missing)    # delete binding
    Lookup = Operation(Key) Returns(Value) Signals(Missing)

Operations on *different keys* never interact, so the whole dependency
relation is keyed — the hybrid protocol degenerates to per-key locking for
free, exactly the behaviour type-specific locking papers advertise for
directories.  Within one key the derived dependency relation is an
Account-like pattern: successful updates depend on successful updates;
failure results depend on the operations that could flip them; lookups
depend on value-changing updates.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Mapping, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "DirectorySpec",
    "bind_ok",
    "bind_duplicate",
    "rebind_ok",
    "rebind_missing",
    "unbind_ok",
    "unbind_missing",
    "lookup_ok",
    "lookup_missing",
    "MISSING",
    "DUPLICATE",
    "DIRECTORY_DEPENDENCY",
    "DIRECTORY_CONFLICT",
    "DIRECTORY_COMMUTATIVITY_CONFLICT",
    "directory_universe",
    "make_directory_adt",
]

#: Exceptional results.
MISSING = "Missing"
DUPLICATE = "Duplicate"


def bind_ok(key: Any, value: Any) -> Operation:
    """``[Bind(key, value), Ok]`` — key was previously unbound."""
    return Operation(Invocation("Bind", (key, value)), "Ok")


def bind_duplicate(key: Any, value: Any) -> Operation:
    """``[Bind(key, value), Duplicate]`` — key was already bound."""
    return Operation(Invocation("Bind", (key, value)), DUPLICATE)


def rebind_ok(key: Any, value: Any) -> Operation:
    """``[Rebind(key, value), Ok]`` — key was bound; now maps to value."""
    return Operation(Invocation("Rebind", (key, value)), "Ok")


def rebind_missing(key: Any, value: Any) -> Operation:
    """``[Rebind(key, value), Missing]`` — key was unbound; unchanged."""
    return Operation(Invocation("Rebind", (key, value)), MISSING)


def unbind_ok(key: Any) -> Operation:
    """``[Unbind(key), Ok]`` — key was bound; binding removed."""
    return Operation(Invocation("Unbind", (key,)), "Ok")


def unbind_missing(key: Any) -> Operation:
    """``[Unbind(key), Missing]`` — key was unbound; unchanged."""
    return Operation(Invocation("Unbind", (key,)), MISSING)


def lookup_ok(key: Any, value: Any) -> Operation:
    """``[Lookup(key), value]`` — key currently maps to value."""
    return Operation(Invocation("Lookup", (key,)), ("Found", value))


def lookup_missing(key: Any) -> Operation:
    """``[Lookup(key), Missing]`` — key is unbound."""
    return Operation(Invocation("Lookup", (key,)), MISSING)


class DirectorySpec(SerialSpec):
    """Serial spec over canonical (sorted tuple of pairs) map states."""

    name = "Directory"

    def __init__(self, initial: Mapping[Any, Any] = ()):
        self._initial = tuple(sorted(dict(initial).items(), key=repr))

    def initial_state(self) -> Hashable:
        return self._initial

    @staticmethod
    def _get(state: Tuple[Tuple[Any, Any], ...], key: Any):
        for k, v in state:
            if k == key:
                return ("Found", v)
        return None

    @staticmethod
    def _set(state: Tuple[Tuple[Any, Any], ...], key: Any, value: Any):
        pairs = [(k, v) for k, v in state if k != key]
        pairs.append((key, value))
        return tuple(sorted(pairs, key=repr))

    @staticmethod
    def _del(state: Tuple[Tuple[Any, Any], ...], key: Any):
        return tuple((k, v) for k, v in state if k != key)

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        if invocation.name == "Bind":
            key, value = invocation.args
            if self._get(state, key) is None:
                return [("Ok", self._set(state, key, value))]
            return [(DUPLICATE, state)]
        if invocation.name == "Rebind":
            key, value = invocation.args
            if self._get(state, key) is None:
                return [(MISSING, state)]
            return [("Ok", self._set(state, key, value))]
        if invocation.name == "Unbind":
            (key,) = invocation.args
            if self._get(state, key) is None:
                return [(MISSING, state)]
            return [("Ok", self._del(state, key))]
        if invocation.name == "Lookup":
            (key,) = invocation.args
            found = self._get(state, key)
            return [(MISSING if found is None else found, state)]
        return []


def _key(operation: Operation) -> Any:
    return operation.args[0]


def _binds_key(operation: Operation) -> bool:
    """Does the operation (with its observed result) bind its key?"""
    return (
        operation.name in ("Bind", "Rebind") and operation.result == "Ok"
    )


def _unbinds_key(operation: Operation) -> bool:
    """Does the operation (with its observed result) unbind its key?"""
    return operation.name == "Unbind" and operation.result == "Ok"


def _changes_key(operation: Operation) -> bool:
    """Does the operation change its key's binding at all?"""
    return _binds_key(operation) or _unbinds_key(operation)


def _requires_absent(operation: Operation) -> bool:
    """Is the operation's observed result legal only when its key is unbound?"""
    if operation.name == "Bind" and operation.result == "Ok":
        return True
    if operation.name in ("Rebind", "Unbind") and operation.result == MISSING:
        return True
    return operation.name == "Lookup" and operation.result == MISSING


def _requires_bound(operation: Operation) -> bool:
    """Is the operation's observed result legal only when its key is bound?"""
    if operation.name == "Bind" and operation.result == DUPLICATE:
        return True
    if operation.name in ("Rebind", "Unbind") and operation.result == "Ok":
        return True
    return operation.name == "Lookup" and operation.result != MISSING


def _directory_dep(q: Operation, p: Operation) -> bool:
    # Derived invalidated-by relation (and the key insight of its shape):
    # only Bind,Ok flips a key from absent to bound, and only Unbind,Ok
    # flips it back, so "requires-absent" results depend exactly on Bind,Ok
    # and "requires-bound" results exactly on Unbind,Ok; a Lookup that
    # observed a value additionally depends on rebinds to *other* values.
    # Any key-changing operation legal on both sides of an inserted p
    # re-merges the states, so no longer-range dependencies exist (the
    # bounded checker in the tests confirms this).
    if _key(q) != _key(p):
        return False  # operations on different keys never interact
    if _requires_absent(q):
        return p.name == "Bind" and p.result == "Ok"
    if q.name == "Lookup" and q.result != MISSING:
        if _unbinds_key(p):
            return True
        return (
            p.name == "Rebind"
            and p.result == "Ok"
            and ("Found", p.args[1]) != q.result
        )
    if _requires_bound(q):
        return _unbinds_key(p)
    return False


#: Derived minimal dependency relation for Directory (keyed; verified in
#: the test suite with the bounded checker).
DIRECTORY_DEPENDENCY = PredicateRelation(_directory_dep, name="Directory dependency")

#: Hybrid lock conflicts for Directory.
DIRECTORY_CONFLICT = symmetric_closure(
    DIRECTORY_DEPENDENCY, name="Directory conflicts (hybrid)"
)


def _directory_mc(q: Operation, p: Operation) -> bool:
    # Failure-to-commute = the dependency relation's symmetric closure plus
    # one extra family: Rebind,Ok(v) and Rebind,Ok(w) with v != w leave
    # distinguishable states depending on order.  (Derived exhaustively
    # pair-by-pair; the tests re-derive it with the bounded checker.)
    if _key(q) != _key(p):
        return False
    if _directory_dep(q, p) or _directory_dep(p, q):
        return True
    if (
        q.name == "Rebind"
        and p.name == "Rebind"
        and q.result == "Ok"
        and p.result == "Ok"
    ):
        return q.args[1] != p.args[1]
    return False


#: Failure-to-commute conflicts for Directory: adds writer/writer pairs.
DIRECTORY_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    _directory_mc, name="Directory conflicts (commutativity)"
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": DIRECTORY_CONFLICT,
    "COMMUTATIVITY_CONFLICT": DIRECTORY_COMMUTATIVITY_CONFLICT,
}


def directory_universe(
    keys: Sequence[Any] = ("a",), values: Sequence[Any] = (1, 2)
) -> List[Operation]:
    """Every Directory operation over finite key/value domains."""
    ops: List[Operation] = []
    for key in keys:
        for value in values:
            ops.append(bind_ok(key, value))
            ops.append(bind_duplicate(key, value))
            ops.append(rebind_ok(key, value))
            ops.append(rebind_missing(key, value))
            ops.append(lookup_ok(key, value))
        ops.append(unbind_ok(key))
        ops.append(unbind_missing(key))
        ops.append(lookup_missing(key))
    return ops


def make_directory_adt(initial: Mapping[Any, Any] = ()) -> ADT:
    """Bundle the Directory type."""
    return ADT(
        name="Directory",
        spec=DirectorySpec(initial),
        dependency=DIRECTORY_DEPENDENCY,
        conflict=load_compiled("directory", "CONFLICT", DIRECTORY_CONFLICT),
        commutativity_conflict=load_compiled(
            "directory", "COMMUTATIVITY_CONFLICT", DIRECTORY_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: operation.name == "Lookup",
        universe=directory_universe,
    )


register("Directory", make_directory_adt)
