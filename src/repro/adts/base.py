"""Common scaffolding for the ADT library.

Each abstract data type module in this package supplies:

* a :class:`~repro.core.specs.SerialSpec` subclass with canonical,
  hashable abstract states;
* operation constructors (``enq(v)``, ``deq(v)``, ...);
* the paper's dependency relation(s) as predicate relations, its symmetric
  closure (the hybrid protocol's lock-conflict relation), and the
  failure-to-commute relation (the commutativity baseline's conflicts);
* a read/write classification for the classical strict two-phase-locking
  baseline;
* a ``universe(...)`` helper building the finite operation universe used by
  the bounded derivations and table benchmarks.

The :class:`ADT` descriptor bundles these pieces so that protocols, the
runtime, the simulator, and the analysis tools can treat types uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.conflict import PredicateRelation, Relation
from ..core.operations import Operation
from ..core.specs import SerialSpec

__all__ = [
    "ADT",
    "rw_conflict_relation",
    "register",
    "registry",
    "get_adt",
    "get_factory",
]


@dataclass(frozen=True)
class ADT:
    """A bundled abstract data type description.

    Attributes
    ----------
    name:
        Type name ("FIFOQueue", "Account", ...).
    spec:
        The serial specification.
    dependency:
        The paper's (minimal) dependency relation for the type; rows depend
        on columns, i.e. ``dependency.related(q, p)`` means "q depends on p".
    conflict:
        The hybrid protocol's lock-conflict relation — the symmetric
        closure of ``dependency``.
    commutativity_conflict:
        The failure-to-commute relation (already symmetric): the conflict
        table a commutativity-based protocol must use.
    is_read:
        Classifies an operation as a *read* for the classical read/write
        two-phase-locking baseline; anything else takes a write lock.
    universe:
        Builds a finite operation universe over a value domain for the
        bounded derivations.
    alternative_dependencies:
        Further minimal dependency relations, when the type has more than
        one (the FIFO queue's Figure 4-3).
    """

    name: str
    spec: SerialSpec
    dependency: Relation
    conflict: Relation
    commutativity_conflict: Relation
    is_read: Callable[[Operation], bool]
    universe: Callable[..., List[Operation]]
    alternative_dependencies: Dict[str, Relation] = field(default_factory=dict)

    def rw_conflict(self) -> Relation:
        """The strict-2PL conflict relation induced by ``is_read``."""
        return rw_conflict_relation(self.is_read, name=f"rw({self.name})")


def rw_conflict_relation(
    is_read: Callable[[Operation], bool], name: str = "rw"
) -> Relation:
    """Classical read/write conflicts: everything but read-read conflicts."""
    return PredicateRelation(
        lambda q, p: not (is_read(q) and is_read(p)), name=name
    )


_REGISTRY: Dict[str, Callable[[], ADT]] = {}


def register(name: str, factory: Callable[[], ADT]) -> None:
    """Register an ADT factory under a lookup name."""
    _REGISTRY[name] = factory


def registry() -> List[str]:
    """Names of every registered ADT."""
    return sorted(_REGISTRY)


def get_factory(name: str) -> Callable[[], ADT]:
    """The registered factory for an ADT, without instantiating it.

    The conflict-relation compiler uses this to locate each bundle's
    defining module (``factory.__module__``) when generating compiled
    tables.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown ADT {name!r}; registered: {', '.join(registry())}"
        ) from None


def get_adt(name: str) -> ADT:
    """Instantiate a registered ADT by name."""
    return get_factory(name)()
