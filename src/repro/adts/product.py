"""Product types: records of independent components.

A :class:`ProductSpec` is the Cartesian product of named component
specifications: the abstract state is the tuple of component states and
an invocation addresses one field with a dotted name (``"savings.Credit"``).

The theory transfers cleanly — and mechanically: operations on different
fields never invalidate each other, so the product's dependency relation
is the *componentwise lift* of the components' relations, and the hybrid
protocol gets intra-object field-level locking for free (the same effect
the Directory gets from keys, now by construction).  The test suite
derives a two-field product's invalidated-by from scratch and checks it
equals the lift.

:func:`make_product_adt` bundles a record of existing ADTs into one ADT
whose relations are the lifts, ready for any runtime in the library.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Tuple

from ..core.conflict import PredicateRelation, Relation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from .base import ADT

__all__ = ["ProductSpec", "lift_relation", "make_product_adt", "qualify"]


def qualify(field: str, invocation: Invocation) -> Invocation:
    """Address a component's invocation to a product field."""
    return Invocation(f"{field}.{invocation.name}", invocation.args)


def _split(name: str) -> Tuple[str, str]:
    field, _, inner = name.partition(".")
    return field, inner


class ProductSpec(SerialSpec):
    """The product of named component specifications."""

    def __init__(self, components: Mapping[str, SerialSpec]):
        if not components:
            raise ValueError("a product needs at least one component")
        for field in components:
            if "." in field or not field:
                raise ValueError(f"invalid field name {field!r}")
        self._components: Dict[str, SerialSpec] = dict(components)
        self._order: List[str] = sorted(self._components)
        self.name = "Product(" + ", ".join(
            f"{field}:{spec.name}" for field, spec in sorted(components.items())
        ) + ")"

    @property
    def fields(self) -> List[str]:
        """The field names, in canonical order."""
        return list(self._order)

    def component(self, field: str) -> SerialSpec:
        """The specification of one field."""
        return self._components[field]

    def initial_state(self) -> Hashable:
        return tuple(
            self._components[field].initial_state() for field in self._order
        )

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        field, inner_name = _split(invocation.name)
        if not inner_name or field not in self._components:
            return []
        index = self._order.index(field)
        inner = Invocation(inner_name, invocation.args)
        outs = []
        for result, successor in self._components[field].outcomes(
            state[index], inner
        ):
            next_state = state[:index] + (successor,) + state[index + 1 :]
            outs.append((result, next_state))
        return outs


def _strip(operation: Operation) -> Tuple[str, Operation]:
    """Split a product operation into (field, component operation)."""
    field, inner_name = _split(operation.name)
    return field, Operation(Invocation(inner_name, operation.args), operation.result)


def lift_relation(relations: Mapping[str, Relation], name: str = "") -> Relation:
    """The componentwise lift: related iff same field and the component
    relation relates the stripped operations."""

    def related(q: Operation, p: Operation) -> bool:
        q_field, q_inner = _strip(q)
        p_field, p_inner = _strip(p)
        if q_field != p_field or q_field not in relations:
            return False
        return relations[q_field].related(q_inner, p_inner)

    return PredicateRelation(related, name=name or "product lift")


def make_product_adt(components: Mapping[str, ADT], name: str = "") -> ADT:
    """Bundle a record of ADTs as one ADT with lifted relations.

    The lifted dependency relation is a dependency relation for the
    product (operations on distinct fields commute outright, and within a
    field the component's relation applies — machine-verified in the
    tests), so all the protocols run on products unchanged.
    """
    spec = ProductSpec({field: adt.spec for field, adt in components.items()})
    dependency = lift_relation(
        {field: adt.dependency for field, adt in components.items()},
        name=f"{spec.name} dependency",
    )
    commutativity = lift_relation(
        {field: adt.commutativity_conflict for field, adt in components.items()},
        name=f"{spec.name} conflicts (commutativity)",
    )

    def is_read(operation: Operation) -> bool:
        field, inner = _strip(operation)
        return field in components and components[field].is_read(inner)

    def universe(*_ignored) -> List[Operation]:
        ops: List[Operation] = []
        for field, adt in sorted(components.items()):
            for operation in adt.universe():
                ops.append(
                    Operation(
                        qualify(field, operation.invocation), operation.result
                    )
                )
        return ops

    return ADT(
        name=name or spec.name,
        spec=spec,
        dependency=dependency,
        conflict=symmetric_closure(dependency, name=f"{spec.name} conflicts"),
        commutativity_conflict=commutativity,
        is_read=is_read,
        universe=universe,
    )
