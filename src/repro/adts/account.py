"""The Account type (paper, Section 4.3 Figure 4-5, Section 7.1 Figure 7-1,
and the Avalon/C++ appendix).

An Account provides::

    Credit = Operation(Dollar)                      # balance += amount
    Post   = Operation(Percent)                     # balance *= 1 + pct/100
    Debit  = Operation(Dollar) Signals(Overdraft)   # balance -= amount,
                                                    # or Overdraft unchanged

Amounts and percentages are non-negative; arithmetic uses
:class:`fractions.Fraction` so abstract states stay canonical and hashable.

The unique minimal dependency relation (Figure 4-5, = invalidated-by)::

    (row dep col)     Credit(n)  Post(n)  Debit(n),Ok  Debit(n),Ovd
    Credit(m), Ok
    Post(m), Ok
    Debit(m), Ok                          true
    Debit(m), Ovd     true       true

Its symmetric closure is exactly the appendix's lock table::

    locks.define(CREDIT_LOCK, OVERDRAFT_LOCK);
    locks.define(POST_LOCK,   OVERDRAFT_LOCK);
    locks.define(DEBIT_LOCK,  DEBIT_LOCK);

The relation *uses operation results*: Credit need not conflict with
successful debits, but must conflict with attempted overdrafts — a credit
cannot invalidate a successful debit but can invalidate an Overdraft
exception.  Failure-to-commute (Figure 7-1) additionally forces Post to
conflict with Credit and with both kinds of Debit, so commutativity-based
protocols permit strictly less concurrency on this type.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "AccountSpec",
    "credit",
    "post",
    "debit_ok",
    "debit_overdraft",
    "OVERDRAFT",
    "ACCOUNT_DEPENDENCY",
    "ACCOUNT_CONFLICT",
    "ACCOUNT_COMMUTATIVITY_CONFLICT",
    "account_universe",
    "make_account_adt",
]

#: The exceptional Debit result (``Signals(Overdraft)``).
OVERDRAFT = "Overdraft"


def credit(amount) -> Operation:
    """The operation ``[Credit(amount), Ok]``."""
    return Operation(Invocation("Credit", (Fraction(amount),)), "Ok")


def post(percent) -> Operation:
    """The operation ``[Post(percent), Ok]`` (posts interest)."""
    return Operation(Invocation("Post", (Fraction(percent),)), "Ok")


def debit_ok(amount) -> Operation:
    """The operation ``[Debit(amount), Ok]`` (a successful debit)."""
    return Operation(Invocation("Debit", (Fraction(amount),)), "Ok")


def debit_overdraft(amount) -> Operation:
    """The operation ``[Debit(amount), Overdraft]`` (a refused debit)."""
    return Operation(Invocation("Debit", (Fraction(amount),)), OVERDRAFT)


class AccountSpec(SerialSpec):
    """Serial spec over exact rational balances.

    ``Debit(n)`` returns Ok and decrements when the balance covers the
    amount, and signals Overdraft leaving the balance unchanged otherwise —
    a *deterministic* choice based on the current state, so exactly one of
    the two results is legal in any given state.
    """

    name = "Account"

    def __init__(self, initial=0):
        self._initial = Fraction(initial)

    def initial_state(self) -> Hashable:
        return self._initial

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        balance: Fraction = state
        if invocation.name == "Credit":
            (amount,) = invocation.args
            return [("Ok", balance + amount)]
        if invocation.name == "Post":
            (percent,) = invocation.args
            return [("Ok", balance * (1 + Fraction(percent) / 100))]
        if invocation.name == "Debit":
            (amount,) = invocation.args
            if balance >= amount:
                return [("Ok", balance - amount)]
            return [(OVERDRAFT, balance)]
        return []


def _is(operation: Operation, name: str, result: Any = None) -> bool:
    if operation.name != name:
        return False
    return result is None or operation.result == result


def _account_dep(q: Operation, p: Operation) -> bool:
    # Figure 4-5, row q depends on column p.
    if _is(q, "Debit", "Ok") and _is(p, "Debit", "Ok"):
        return True
    if _is(q, "Debit", OVERDRAFT) and (_is(p, "Credit") or _is(p, "Post")):
        return True
    return False


#: Figure 4-5: the unique minimal dependency relation for Account.
ACCOUNT_DEPENDENCY = PredicateRelation(_account_dep, name="Account dependency (Fig 4-5)")

#: Hybrid lock conflicts — the appendix's lock table.
ACCOUNT_CONFLICT = symmetric_closure(ACCOUNT_DEPENDENCY, name="Account conflicts (hybrid)")


def _account_mc(q: Operation, p: Operation) -> bool:
    # Figure 7-1: failure to commute (derived; symmetric by construction).
    names = (q.name, p.name)
    results = (q.result, p.result)
    # Post fails to commute with Credit and with both kinds of Debit
    # (multiplication does not commute with addition / threshold tests),
    # but commutes with Post.  It also keeps the Fig 4-5 conflicts.
    if "Post" in names:
        other = p if q.name == "Post" else q
        return other.name in ("Credit", "Debit")
    if _is(q, "Debit", "Ok") and _is(p, "Debit", "Ok"):
        return True
    if (_is(q, "Debit", OVERDRAFT) and _is(p, "Credit")) or (
        _is(p, "Debit", OVERDRAFT) and _is(q, "Credit")
    ):
        return True
    return False


#: Figure 7-1: failure-to-commute conflicts for Account — a strict
#: superset of the hybrid conflicts.
ACCOUNT_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    _account_mc, name="Account conflicts (commutativity, Fig 7-1)"
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": ACCOUNT_CONFLICT,
    "COMMUTATIVITY_CONFLICT": ACCOUNT_COMMUTATIVITY_CONFLICT,
}


def account_universe(
    amounts: Sequence[Any] = (2, 3), percents: Sequence[Any] = (50,)
) -> List[Operation]:
    """Every Credit/Post/Debit operation over finite amount domains.

    The defaults are chosen so that every entry of Figures 4-5 and 7-1 has
    a short witness (e.g. balance 2 < 3 <= 2 * 1.5 exhibits Post
    invalidating an Overdraft); with other domains some pairs may need
    deeper search bounds.
    """
    ops: List[Operation] = []
    for amount in amounts:
        ops.append(credit(amount))
        ops.append(debit_ok(amount))
        ops.append(debit_overdraft(amount))
    for percent in percents:
        ops.append(post(percent))
    return ops


def make_account_adt(initial=0) -> ADT:
    """Bundle the Account type."""
    return ADT(
        name="Account",
        spec=AccountSpec(initial),
        dependency=ACCOUNT_DEPENDENCY,
        conflict=load_compiled("account", "CONFLICT", ACCOUNT_CONFLICT),
        commutativity_conflict=load_compiled(
            "account", "COMMUTATIVITY_CONFLICT", ACCOUNT_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: False,  # every operation may update
        universe=account_universe,
    )


register("Account", make_account_adt)
