"""A LIFO Stack type (library extension, derived with the paper's
machinery).

``Push(v) -> Ok`` places an item on top; ``Pop() -> v`` removes and
returns the top item, blocking while the stack is empty.  The derived
invalidated-by relation (machine-verified in the tests) mirrors the FIFO
queue's Figure 4-2 exactly::

    (row dep col)    Push(v'), Ok    Pop, v'
    Push(v), Ok
    Pop, v           v != v'         v == v'

so the hybrid protocol admits **concurrent pushes** — they do not
commute (failure-to-commute adds Push(v) <-> Push(v') for v != v'), but
neither invalidates the other; the commit timestamps decide the pop
order, just as for enqueues.  The paper's queue analysis thus transfers
verbatim to the LIFO discipline.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "StackSpec",
    "push",
    "pop",
    "STACK_DEPENDENCY",
    "STACK_CONFLICT",
    "STACK_COMMUTATIVITY_CONFLICT",
    "stack_universe",
    "make_stack_adt",
]


def push(value: Any) -> Operation:
    """The operation ``[Push(value), Ok]``."""
    return Operation(Invocation("Push", (value,)), "Ok")


def pop(value: Any) -> Operation:
    """The operation ``[Pop(), value]``."""
    return Operation(Invocation("Pop"), value)


class StackSpec(SerialSpec):
    """Serial specification: last-in first-out; Pop is partial on empty."""

    name = "Stack"

    def initial_state(self) -> Hashable:
        return ()

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        items: Tuple[Any, ...] = state
        if invocation.name == "Push":
            (value,) = invocation.args
            return [("Ok", items + (value,))]
        if invocation.name == "Pop":
            if not items:
                return []  # partial: blocks on an empty stack
            return [(items[-1], items[:-1])]
        return []


def _stack_dep(q: Operation, p: Operation) -> bool:
    # Pop(v) depends on Push(v') when v != v', and on Pop(v') when v == v'.
    if q.name != "Pop":
        return False
    if p.name == "Push":
        return q.result != p.args[0]
    if p.name == "Pop":
        return q.result == p.result
    return False


#: Derived minimal dependency relation for Stack (= invalidated-by).
STACK_DEPENDENCY = PredicateRelation(_stack_dep, name="Stack dependency")

#: Hybrid lock conflicts: pushes stay concurrent.
STACK_CONFLICT = symmetric_closure(STACK_DEPENDENCY, name="Stack conflicts (hybrid)")


def _stack_mc(q: Operation, p: Operation) -> bool:
    # Failure to commute adds Push(v) <-> Push(v') for v != v'.
    if q.name == "Push" and p.name == "Push":
        return q.args[0] != p.args[0]
    return _stack_dep(q, p) or _stack_dep(p, q)


#: Failure-to-commute conflicts: pushes of distinct items conflict.
STACK_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    _stack_mc, name="Stack conflicts (commutativity)"
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": STACK_CONFLICT,
    "COMMUTATIVITY_CONFLICT": STACK_COMMUTATIVITY_CONFLICT,
}


def stack_universe(values: Sequence[Any] = (1, 2)) -> List[Operation]:
    """Every Push/Pop operation over a finite value domain."""
    ops: List[Operation] = []
    for v in values:
        ops.append(push(v))
        ops.append(pop(v))
    return ops


def make_stack_adt() -> ADT:
    """Bundle the Stack type."""
    return ADT(
        name="Stack",
        spec=StackSpec(),
        dependency=STACK_DEPENDENCY,
        conflict=load_compiled("stack", "CONFLICT", STACK_CONFLICT),
        commutativity_conflict=load_compiled(
            "stack", "COMMUTATIVITY_CONFLICT", STACK_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: False,
        universe=stack_universe,
    )


register("Stack", make_stack_adt)
