"""The File type (paper, Section 4.3, Figure 4-1).

A File provides ``Read() -> Value`` and ``Write(Value) -> Ok``, where Read
returns the most recently written value.  Its unique minimal dependency
relation (which is also its invalidated-by relation) is:

=============  ============  ==================
(row dep col)  Read, v'      Write(v'), Ok
=============  ============  ==================
Read, v                      v != v'
Write(v), Ok
=============  ============  ==================

A read depends on a write when their values are distinct; writes do not
depend on one another.  The hybrid protocol therefore allows *concurrent
writes* — later transactions read the value written by the transaction
with the later commit timestamp — generalising the Thomas Write Rule.
Commutativity-based protocols must additionally make writes conflict with
each other (different values) because ``Write(1); Write(2)`` and
``Write(2); Write(1)`` leave distinguishable states.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "FileSpec",
    "read",
    "write",
    "FILE_DEPENDENCY",
    "FILE_CONFLICT",
    "FILE_COMMUTATIVITY_CONFLICT",
    "file_universe",
    "make_file_adt",
]


def read(value: Any) -> Operation:
    """The operation ``[Read(), value]``."""
    return Operation(Invocation("Read"), value)


def write(value: Any) -> Operation:
    """The operation ``[Write(value), Ok]``."""
    return Operation(Invocation("Write", (value,)), "Ok")


class FileSpec(SerialSpec):
    """Serial specification: Read returns the most recently written value."""

    name = "File"

    def __init__(self, initial: Any = 0):
        self._initial = initial

    def initial_state(self) -> Hashable:
        return self._initial

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        if invocation.name == "Read":
            return [(state, state)]
        if invocation.name == "Write":
            (value,) = invocation.args
            return [("Ok", value)]
        return []


def _read_depends_on_write(q: Operation, p: Operation) -> bool:
    # Read returning v depends on Write(v') exactly when v != v'.
    return (
        q.name == "Read"
        and p.name == "Write"
        and q.result != p.args[0]
    )


#: Figure 4-1: the unique minimal dependency relation for File.
FILE_DEPENDENCY = PredicateRelation(_read_depends_on_write, name="File dependency (Fig 4-1)")

#: Hybrid lock conflicts: symmetric closure of Figure 4-1.
FILE_CONFLICT = symmetric_closure(FILE_DEPENDENCY, name="File conflicts (hybrid)")


def _fails_to_commute(q: Operation, p: Operation) -> bool:
    # Read/Write fail to commute when values differ (the read's outcome
    # changes); Write/Write fail to commute when values differ (final state
    # changes).  Read/Read always commute.
    if {q.name, p.name} == {"Read", "Write"}:
        r, w = (q, p) if q.name == "Read" else (p, q)
        return r.result != w.args[0]
    if q.name == "Write" and p.name == "Write":
        return q.args[0] != p.args[0]
    return False


#: Failure-to-commute conflicts for File (the commutativity baseline);
#: strictly more restrictive than Figure 4-1 on write/write pairs.
FILE_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    _fails_to_commute, name="File conflicts (commutativity)"
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": FILE_CONFLICT,
    "COMMUTATIVITY_CONFLICT": FILE_COMMUTATIVITY_CONFLICT,
}


def file_universe(values: Sequence[Any] = (0, 1)) -> List[Operation]:
    """Every Read/Write operation over a finite value domain."""
    ops: List[Operation] = []
    for v in values:
        ops.append(read(v))
        ops.append(write(v))
    return ops


def make_file_adt(initial: Any = 0) -> ADT:
    """Bundle the File type for the protocols/runtime/analysis layers."""
    return ADT(
        name="File",
        spec=FileSpec(initial),
        dependency=FILE_DEPENDENCY,
        conflict=load_compiled("file", "CONFLICT", FILE_CONFLICT),
        commutativity_conflict=load_compiled(
            "file", "COMMUTATIVITY_CONFLICT", FILE_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: operation.name == "Read",
        universe=file_universe,
    )


register("File", make_file_adt)
