"""A mathematical Set type (library extension, derived with the paper's
machinery).

Operations::

    Insert = Operation(Item)               # add (idempotent)
    Remove = Operation(Item)               # take out (idempotent)
    Member = Operation(Item) Returns(Bool) # observe membership

Because Insert and Remove are idempotent and total, nothing invalidates
them; only the observer can be invalidated.  The derived minimal dependency
relation (machine-verified in the test suite) is::

    (row dep col)        Insert(v')   Remove(v')   Member(v'),b'
    Insert(v)
    Remove(v)
    Member(v),true                    v == v'
    Member(v),false      v == v'

This makes Sets extremely concurrent under the hybrid protocol: inserts
and removes of *any* items — even the same one — may run concurrently;
commit timestamps decide the winner (a typed analogue of the Thomas Write
Rule).  Commutativity-based locking must additionally make Insert(v) and
Remove(v) conflict, because their two orders leave distinguishable states.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

from ..core.conflict import PredicateRelation, symmetric_closure
from ..core.operations import Invocation, Operation
from ..core.specs import SerialSpec
from ._compiled import load_compiled
from .base import ADT, register

__all__ = [
    "SetSpec",
    "insert",
    "remove",
    "member",
    "SET_DEPENDENCY",
    "SET_CONFLICT",
    "SET_COMMUTATIVITY_CONFLICT",
    "set_universe",
    "make_set_adt",
]


def insert(value: Any) -> Operation:
    """The operation ``[Insert(value), Ok]``."""
    return Operation(Invocation("Insert", (value,)), "Ok")


def remove(value: Any) -> Operation:
    """The operation ``[Remove(value), Ok]``."""
    return Operation(Invocation("Remove", (value,)), "Ok")


def member(value: Any, present: bool) -> Operation:
    """The operation ``[Member(value), present]``."""
    return Operation(Invocation("Member", (value,)), bool(present))


class SetSpec(SerialSpec):
    """Serial spec over frozensets of items."""

    name = "Set"

    def __init__(self, initial: Iterable[Any] = ()):
        self._initial: FrozenSet[Any] = frozenset(initial)

    def initial_state(self) -> Hashable:
        return self._initial

    def outcomes(self, state: Hashable, invocation: Invocation) -> Iterable[Tuple[Any, Hashable]]:
        items: FrozenSet[Any] = state
        if invocation.name == "Insert":
            (value,) = invocation.args
            return [("Ok", items | {value})]
        if invocation.name == "Remove":
            (value,) = invocation.args
            return [("Ok", items - {value})]
        if invocation.name == "Member":
            (value,) = invocation.args
            return [(value in items, items)]
        return []


def _set_dep(q: Operation, p: Operation) -> bool:
    if q.name == "Member" and q.result is True:
        return p.name == "Remove" and p.args[0] == q.args[0]
    if q.name == "Member" and q.result is False:
        return p.name == "Insert" and p.args[0] == q.args[0]
    return False


#: Minimal dependency relation for Set (machine-verified in tests).
SET_DEPENDENCY = PredicateRelation(_set_dep, name="Set dependency")

#: Hybrid lock conflicts for Set.
SET_CONFLICT = symmetric_closure(SET_DEPENDENCY, name="Set conflicts (hybrid)")


def _set_mc(q: Operation, p: Operation) -> bool:
    a, b = (q, p) if q.name <= p.name else (p, q)
    if a.name == "Insert" and b.name == "Remove":
        return a.args[0] == b.args[0]
    if a.name == "Insert" and b.name == "Member":
        return a.args[0] == b.args[0] and b.result is False
    if a.name == "Member" and b.name == "Remove":
        return a.args[0] == b.args[0] and a.result is True
    return False


#: Failure-to-commute conflicts for Set: adds Insert(v) <-> Remove(v).
SET_COMMUTATIVITY_CONFLICT = PredicateRelation(  # repro: symmetric (REP107 verifies this against the derived failure-to-commute relation)
    _set_mc, name="Set conflicts (commutativity)"
)

#: Tables ``repro compile`` derives, verifies (REP107) and compiles.
COMPILED_TABLES = {
    "CONFLICT": SET_CONFLICT,
    "COMMUTATIVITY_CONFLICT": SET_COMMUTATIVITY_CONFLICT,
}


def set_universe(values: Sequence[Any] = (1, 2)) -> List[Operation]:
    """Every Insert/Remove/Member operation over a finite value domain."""
    ops: List[Operation] = []
    for v in values:
        ops.append(insert(v))
        ops.append(remove(v))
        ops.append(member(v, True))
        ops.append(member(v, False))
    return ops


def make_set_adt(initial: Iterable[Any] = ()) -> ADT:
    """Bundle the Set type."""
    return ADT(
        name="Set",
        spec=SetSpec(initial),
        dependency=SET_DEPENDENCY,
        conflict=load_compiled("set", "CONFLICT", SET_CONFLICT),
        commutativity_conflict=load_compiled(
            "set", "COMMUTATIVITY_CONFLICT", SET_COMMUTATIVITY_CONFLICT
        ),
        is_read=lambda operation: operation.name == "Member",
        universe=set_universe,
    )


register("Set", make_set_adt)
