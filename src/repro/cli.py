"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show registered ADTs and protocols.
``derive <adt>``
    Derive the invalidated-by and failure-to-commute tables for a type
    from its serial specification and print them in the paper's style.
``compile [adt...]``
    The conflict-relation compiler: re-derive every declared table from
    its serial specification, verify the hand-written relations (an
    unsound table — asymmetric or failing Definition 3 — is an error; a
    non-minimal one a warning), and emit compiled bitset modules under
    ``adts/_compiled/`` that the factories load by default.  With
    ``--check``, verify only and exit 1 when a generated module is
    missing, stale, or any table is refuted (the CI gate).
``simulate <workload>``
    Run a simulated workload under one or more protocols and print the
    metrics table.  ``--crash-rate`` injects Poisson manager crashes;
    ``--wal-dir`` attaches an on-disk write-ahead log per protocol so the
    run survives a real process kill.
``recover <logdir>``
    Rebuild a transaction manager from a ``--wal-dir`` directory
    (checkpoint + WAL replay) and print the recovered object states.
``trace <workload>``
    Run one workload under one protocol with the trace bus attached and
    dump the event stream: ``--format jsonl`` (machine-readable, every
    ``lock.conflict`` names the refused/held operation pair), ``spans``
    (per-transaction latency table), ``events`` or ``summary``.
``stats <workload>`` / ``stats --connect HOST:PORT``
    Run one workload and print the metrics-registry view: latency
    histograms, conflict breakdown by operation pair, compaction
    horizon / retained-intentions gauges, and an end-of-run lock-table
    plus waits-for-graph snapshot (``--json`` for machine output).
    With ``--connect``, query a *live* server's in-band ``stats`` op
    instead and render its snapshot (``--prometheus`` for text
    exposition format).
``lint [paths...]``
    Run the AST-based static analyzer (:mod:`repro.lint`) that enforces
    the repo's concurrency-control invariants at rest: registered trace
    kinds and payload keys, symmetric conflict relations, encapsulated
    protocol state, deterministic simulation paths, exception-safe
    resource handling, and no blocking calls in the event loop.  Exits
    nonzero when any rule fires (the CI gate).
``serve``
    Boot the socket serving tier (:mod:`repro.server`): one or more
    sharded transaction managers behind the length-prefixed JSON wire
    protocol, with per-connection sessions, bounded work queues (BUSY
    backpressure), and graceful drain on SIGTERM/SIGINT.  ``--trace-file``
    records every ``server.*`` / ``txn.*`` event so the run can be
    certified offline with ``repro check --trace-file``.  ``--processes
    N`` shards the objects across *N* WAL-backed worker processes
    (shared-nothing, group commit, cross-shard 2PC, supervised respawn)
    instead of in-loop managers; ``--data-dir`` roots the per-shard
    WALs so a restarted server recovers its state.
``bench serve``
    Run the closed-/open-loop load generator against an in-process
    server and write the schema-validated ``BENCH_serve.json`` artifact
    (sustained txn/s and p50/p99 latency across a concurrency sweep,
    with the atomicity checker's verdict, the end-to-end span
    breakdown, and the critical-path phase budget embedded).
    ``--profile-dir`` additionally runs the sampling profiler for the
    whole serve window and drops ``profile.folded`` / ``profile.json``
    there for ``repro profile``.
``bench shard``
    Run the multi-process sharding benchmark and write the
    schema-validated ``BENCH_shard.json`` artifact: group-commit worker
    scaling against a durable-per-append baseline, the fsync/txn
    amortisation sweep, sequential cross-shard 2PC throughput, and a
    certified merged-trace run (``shard_trace.jsonl``).
``bench compare OLD.json NEW.json``
    Compare two ``BENCH_serve.json`` artifacts and exit nonzero when
    the new run regressed (throughput down >20% or p99 up >50% at the
    peak concurrency level) — the CI trajectory guard.
``profile <dump>``
    Render a profile artifact offline: a ``profile.json`` dump, a
    ``.folded`` collapsed-stack file, or a ``--profile-dir`` directory.
    Shows the hottest frames and stacks from the sampler, the
    critical-path phase budget with coz-lite what-if estimates, and the
    contention table (blocked time per conflict pair).  ``--top N``
    bounds the tables, ``--json`` dumps the raw report.
``top``
    Curses-free live view over a running server's ``stats`` op:
    queue depths, commit/abort/BUSY rates, latency quantiles, hottest
    conflict pairs, flight-recorder status — refreshed on an interval.
``analyze <trace.jsonl>``
    Fold a recorded server trace (or a flight-recorder dump) into a
    postmortem report: per-phase latency breakdown, hottest conflict
    pairs, shard imbalance, queue-depth timeline, slowest transactions
    with their span waterfalls (``--json`` for the raw report).
``check [workload | --trace-file FILE]``
    Certify a run hybrid atomic with the streaming oracle
    (:class:`repro.obs.AtomicityChecker`): either run a workload live
    with the checker attached (any protocol, including ``optimistic``),
    or replay a recorded JSONL trace offline.  Prints the verdict (or
    the full report with ``--json``) and exits nonzero when any checked
    property is violated; each violation carries a minimal witness —
    the smallest event sub-sequence that still reproduces it.

Examples::

    python -m repro list
    python -m repro derive Account
    python -m repro derive FIFOQueue --values 1 2 3
    python -m repro compile
    python -m repro compile --check
    python -m repro simulate queue --protocol hybrid commutativity
    python -m repro simulate account --duration 500 --seed 3
    python -m repro simulate account --crash-rate 0.01 --wal-dir /tmp/wals
    python -m repro simulate queue --verbose --trace-file /tmp/queue.jsonl
    python -m repro simulate queue --check
    python -m repro recover /tmp/wals/hybrid
    python -m repro trace account --format spans
    python -m repro trace queue --format jsonl --output /tmp/trace.jsonl
    python -m repro stats account --wait-policy block
    python -m repro check account --duration 200
    python -m repro check --trace-file /tmp/trace.jsonl --json
    python -m repro serve --port 7400 --workers 2 --trace-file /tmp/serve.jsonl
    python -m repro stats --connect 127.0.0.1:7400
    python -m repro stats --connect 127.0.0.1:7400 --prometheus
    python -m repro top --connect 127.0.0.1:7400 --iterations 3
    python -m repro analyze /tmp/serve.jsonl
    python -m repro serve --processes 4 --data-dir /tmp/shards
    python -m repro bench serve --smoke --output-dir /tmp
    python -m repro bench serve --smoke --output-dir /tmp --profile-dir /tmp/prof
    python -m repro bench shard --smoke --output-dir /tmp
    python -m repro profile /tmp/prof
    python -m repro profile /tmp/prof/profile.folded --top 5
    python -m repro bench compare BENCH_old.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .adts import get_adt, get_factory, registry
from .analysis import (
    audit_adt,
    compare_relations,
    concurrency_score,
    derive_commutativity_figure,
    derive_figure,
    generate_report,
)
from .core.compile import DEFAULT_DOMAINS, depths_for
from .protocols import ALL_PROTOCOLS, OPTIMISTIC, get_protocol
from .sim import (
    AccountWorkload,
    ClientParams,
    DirectoryWorkload,
    FileWorkload,
    QueueWorkload,
    SemiQueueWorkload,
    SetWorkload,
    StackWorkload,
    run_experiment,
)

__all__ = ["main"]

_WORKLOADS = {
    "queue": lambda: QueueWorkload(),
    "semiqueue": lambda: SemiQueueWorkload(),
    "account": lambda: AccountWorkload(),
    "file": lambda: FileWorkload(),
    "set": lambda: SetWorkload(),
    "directory": lambda: DirectoryWorkload(),
    "stack": lambda: StackWorkload(),
}


def _cmd_list(args: argparse.Namespace) -> int:
    print("abstract data types:")
    for name in registry():
        print(f"  {name}")
    print("\nprotocols:")
    for protocol in ALL_PROTOCOLS + [OPTIMISTIC]:
        print(f"  {protocol.name:14s} {protocol.description}")
    print("\nworkloads:")
    for name in sorted(_WORKLOADS):
        print(f"  {name}")
    return 0


def _universe_for(adt, values: Optional[List[str]]):
    if values:
        parsed = [int(v) if v.lstrip("-").isdigit() else v for v in values]
        return adt.universe(tuple(parsed))
    domains = DEFAULT_DOMAINS.get(adt.name, ((1, 2),))
    return adt.universe(*domains)


def _cmd_derive(args: argparse.Namespace) -> int:
    try:
        adt = get_adt(args.adt)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    universe = _universe_for(adt, args.values)
    report = derive_figure(
        adt, universe, f"{adt.name}: invalidated-by (dependency relation)",
        max_h1=args.depth, max_h2=max(1, args.depth - 1),
    )
    print(report.render())
    mc = derive_commutativity_figure(
        adt, universe, f"{adt.name}: failure to commute", max_h=args.depth
    )
    print()
    print(mc.render())
    comparison = compare_relations(adt.conflict, mc.derived, universe)
    print()
    print(f"hybrid vs commutativity conflicts : {comparison}")
    print(
        "concurrency scores                : "
        f"hybrid {concurrency_score(adt.conflict, universe):.3f}, "
        f"commutativity {concurrency_score(adt.commutativity_conflict, universe):.3f}"
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    names = args.adt or registry()
    all_passed = True
    for name in names:
        try:
            adt = get_adt(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        universe = _universe_for(adt, None)
        max_h1, max_h2, mc_depth = depths_for(adt.name)
        report = audit_adt(
            adt,
            universe,
            max_h1=max_h1,
            max_h2=max_h2,
            mc_depth=mc_depth,
            check_minimal=args.minimal,
        )
        print(report.render())
        print()
        all_passed = all_passed and report.passed
    return 0 if all_passed else 1


def _compile_bundle(name: str):
    """Resolve one registered type to its compile-pipeline pieces.

    Returns ``None`` for types without declared ``COMPILED_TABLES`` (the
    opt-in hook each adts module exposes), else a tuple of the bundle,
    its defining module, the module stem, and the tables mapping.
    """
    factory = get_factory(name)
    module = sys.modules[factory.__module__]
    tables = getattr(module, "COMPILED_TABLES", None)
    if not tables:
        return None
    stem = factory.__module__.rsplit(".", 1)[-1]
    return factory(), module, stem, tables


def _cmd_compile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core.compile import (
        compile_masks,
        default_universe,
        reference_relation,
        render_module,
        verify_commutativity_table,
        verify_conflict_table,
    )

    names = args.adt or registry()
    sound = True
    fresh = True
    for name in names:
        try:
            resolved = _compile_bundle(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if resolved is None:
            if args.adt:
                print(f"{name}: no COMPILED_TABLES declared; skipped")
            continue
        adt, module, stem, tables = resolved
        universe = default_universe(adt)
        max_h1, _max_h2, mc_depth = depths_for(name)
        masks = {}
        clean = True
        for key in sorted(tables):
            reference = reference_relation(tables[key])
            label = f"{name}.{key}"
            if "COMMUTATIVITY" in key:
                issues = verify_commutativity_table(
                    label, reference, adt.spec, universe, mc_depth=mc_depth
                )
            else:
                issues = verify_conflict_table(
                    label, reference, adt.spec, universe,
                    max_h=max_h1, max_k=mc_depth,
                )
            for issue in issues:
                print(f"compile: {issue}", file=sys.stderr)
                if issue.severity == "error":
                    sound = False
                    clean = False
            masks[key] = compile_masks(reference, universe)
        if not clean:
            # Never emit (or certify) tables that failed verification.
            continue
        text = render_module(name, module.__name__, universe, masks)
        target = Path(module.__file__).parent / "_compiled" / f"{stem}.py"
        if args.check:
            on_disk = target.read_text(encoding="utf-8") if target.is_file() else None
            if on_disk is None:
                print(
                    f"compile: {name}: {target} is missing — "
                    "run `python -m repro compile`",
                    file=sys.stderr,
                )
                fresh = False
            elif on_disk != text:
                print(
                    f"compile: {name}: {target} is stale — "
                    "regenerate with `python -m repro compile`",
                    file=sys.stderr,
                )
                fresh = False
            else:
                print(
                    f"{name}: verified {len(masks)} table(s) over "
                    f"{len(universe)} op(s); {target.name} up to date"
                )
        else:
            if target.is_file() and target.read_text(encoding="utf-8") == text:
                print(f"{name}: {target} unchanged")
            else:
                target.write_text(text, encoding="utf-8")
                print(
                    f"{name}: wrote {target} "
                    f"({len(masks)} table(s), {len(universe)} op(s))"
                )
    return 0 if sound and fresh else 1


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    results = pathlib.Path(args.results) if args.results else None
    text = generate_report(results_dir=results)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    factory = _WORKLOADS.get(args.workload)
    if factory is None:
        print(
            f"unknown workload {args.workload!r}; "
            f"available: {', '.join(sorted(_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    try:
        protocols = [get_protocol(name) for name in args.protocol]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    fields = [
        "committed",
        "aborted",
        "conflicts",
        "throughput",
        "mean_latency",
        "abort_rate",
        "validation_failures",
    ]
    if args.crash_rate > 0:
        fields.append("crashes")
    header = f"{'protocol':14s}" + "".join(f"{f:>20s}" for f in fields)
    print(header)
    print("-" * len(header))
    if (args.crash_rate > 0 or args.wal_dir) and any(
        p.engine == "optimistic" for p in protocols
    ):
        print(
            "note: crash/WAL flags apply to locking engines only; "
            "the optimistic engine runs without them",
            file=sys.stderr,
        )
    observing = args.verbose or args.trace_file
    jsonl_sink = None
    if args.trace_file:
        from .obs import JSONLSink

        jsonl_sink = JSONLSink(args.trace_file)
    verbose_blocks = []
    check_lines = []
    all_certified = True
    for protocol in protocols:
        wal = None
        if args.wal_dir and protocol.engine != "optimistic":
            import os

            from .recovery import FileWAL

            wal = FileWAL(os.path.join(args.wal_dir, protocol.name))
        tracer = None
        registry = None
        if observing and protocol.engine != "optimistic":
            from .obs import MetricsRegistry, TraceBus

            tracer = TraceBus()
            registry = MetricsRegistry()
            if jsonl_sink is not None:
                tracer.subscribe(jsonl_sink)
        checker = None
        if args.check:
            # One fresh checker per protocol: each run reuses transaction
            # names, so a shared checker would see duplicate histories.
            from .obs import AtomicityChecker, TraceBus

            if tracer is None:
                tracer = TraceBus()
            checker = tracer.subscribe(AtomicityChecker(emit_to=tracer))
        metrics = run_experiment(
            factory(),
            protocol,
            duration=args.duration,
            seed=args.seed,
            crash_rate=0.0 if protocol.engine == "optimistic" else args.crash_rate,
            crash_seed=args.crash_seed,
            wal=wal,
            tracer=tracer,
            registry=registry,
        )
        row = metrics.as_row()
        print(
            f"{protocol.name:14s}"
            + "".join(f"{row.get(f, 0):>20}" for f in fields)
        )
        if args.verbose and registry is not None:
            lines = [f"[{protocol.name}]"]
            breakdown = registry.conflict_breakdown()
            if breakdown:
                lines.append("  conflicts by operation pair:")
                for name, value in breakdown.items():
                    lines.append(f"    {name:50s} {value:>8g}")
            for name, gauge in sorted(registry.gauges.items()):
                lines.append(f"  {name:52s} {gauge.value!r:>8}")
            verbose_blocks.append("\n".join(lines))
        if checker is not None:
            all_certified = all_certified and checker.ok
            check_lines.append(f"[{protocol.name}] {checker.render_report()}")
    if jsonl_sink is not None:
        jsonl_sink.close()
        print(f"\ntrace written to {args.trace_file} ({jsonl_sink.written} events)")
    if verbose_blocks:
        print()
        print("\n".join(verbose_blocks))
    if check_lines:
        print()
        print("\n".join(check_lines))
    if args.wal_dir:
        print(f"\nwrite-ahead logs under {args.wal_dir}/<protocol>")
    return 0 if all_certified else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    import os

    from .recovery import (
        FileCheckpointStore,
        FileWAL,
        committed_state_set,
        recover_manager,
    )

    logdir = args.logdir
    if not os.path.isfile(os.path.join(logdir, "wal.jsonl")):
        print(f"no wal.jsonl under {logdir!r}", file=sys.stderr)
        return 2
    from .recovery import RecoveryError, WalCorruption

    wal = FileWAL(logdir)
    store = FileCheckpointStore(logdir)
    if store.load() is None:
        store = None
    tracer = None
    jsonl_sink = None
    ring = None
    if args.verbose or args.trace_file:
        from .obs import JSONLSink, RingBufferSink, TraceBus, render_events

        tracer = TraceBus()
        if args.trace_file:
            jsonl_sink = tracer.subscribe(JSONLSink(args.trace_file))
        if args.verbose:
            ring = tracer.subscribe(RingBufferSink())
    try:
        # The CLI is the one place wall-clock timing belongs: simulated
        # paths leave ``clock`` unset so reports stay deterministic.
        manager, report = recover_manager(
            wal, store=store, tracer=tracer, clock=time.perf_counter
        )
    except (WalCorruption, RecoveryError) as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if jsonl_sink is not None:
            jsonl_sink.close()
    print(report.summary())
    if ring is not None:
        print()
        print(render_events(ring.events()))
    if args.trace_file:
        print(f"trace written to {args.trace_file} ({jsonl_sink.written} events)")
    print()
    print(f"{'object':20s}{'committed state':>30s}")
    print("-" * 50)
    for name in sorted(manager.objects):
        states = committed_state_set(manager.object(name).machine)
        print(f"{name:20s}{str(sorted(states, key=repr)[0]):>30s}")
    return 0


def _resolve_run(args: argparse.Namespace):
    """Shared workload/protocol resolution for ``trace`` and ``stats``.

    Returns ``(factory, protocol)`` or an exit code on error.
    """
    factory = _WORKLOADS.get(args.workload)
    if factory is None:
        print(
            f"unknown workload {args.workload!r}; "
            f"available: {', '.join(sorted(_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    try:
        protocol = get_protocol(args.protocol)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if protocol.engine == "optimistic":
        print(
            "tracing instruments the locking engine; "
            "pick a locking protocol (e.g. hybrid)",
            file=sys.stderr,
        )
        return 2
    return factory, protocol


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        JSONLSink,
        RingBufferSink,
        SpanBuilder,
        TraceBus,
        render_events,
        render_kind_summary,
        render_spans,
    )

    resolved = _resolve_run(args)
    if isinstance(resolved, int):
        return resolved
    factory, protocol = resolved

    tracer = TraceBus()
    spans = tracer.subscribe(SpanBuilder())
    ring = tracer.subscribe(RingBufferSink())
    jsonl_sink = None
    if args.format == "jsonl":
        jsonl_sink = tracer.subscribe(
            JSONLSink(args.output) if args.output else JSONLSink(sys.stdout)
        )
    run_experiment(
        factory(),
        protocol,
        duration=args.duration,
        seed=args.seed,
        crash_rate=args.crash_rate,
        params=ClientParams(wait_policy=args.wait_policy),
        tracer=tracer,
    )
    if args.format == "jsonl":
        jsonl_sink.close()
        if args.output:
            print(f"trace written to {args.output} ({jsonl_sink.written} events)")
    elif args.format == "spans":
        print(render_spans(spans.spans, limit=args.limit))
    elif args.format == "events":
        print(render_events(ring.events(), limit=args.limit))
    else:  # summary
        print(render_kind_summary(ring.events()))
        committed = spans.committed()
        aborted = spans.aborted()
        print()
        print(
            f"{len(spans.spans)} span(s): {len(committed)} committed, "
            f"{len(aborted)} aborted, "
            f"{sum(1 for s in spans.spans if not s.well_formed)} malformed"
        )
    return 0


def _parse_address(spec: str) -> Optional[tuple]:
    """``HOST:PORT`` -> ``(host, port)``, or None if malformed."""
    host, _, port_text = spec.rpartition(":")
    if not host or not port_text.isdigit():
        return None
    return host, int(port_text)


def _cmd_stats_remote(args: argparse.Namespace) -> int:
    import json

    from .obs import MetricsRegistry, render_prometheus
    from .server import SyncClient
    from .server.top import render_top

    address = _parse_address(args.connect)
    if address is None:
        print(f"stats: bad --connect address {args.connect!r}", file=sys.stderr)
        return 2
    try:
        with SyncClient(*address) as client:
            snapshot = client.stats()
    except (OSError, ConnectionError) as exc:
        print(f"stats: cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, default=repr))
        return 0
    if args.prometheus:
        registry = MetricsRegistry.from_snapshot(snapshot.get("metrics") or {})
        sys.stdout.write(render_prometheus(registry))
        return 0
    print(render_top(snapshot))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import (
        MetricsRegistry,
        SpanBuilder,
        TraceBus,
        manager_lock_tables,
        render_histogram,
        render_lock_tables,
        render_spans,
        render_waits_for,
        waits_for_edges,
    )

    if args.connect and args.workload:
        print("stats: give a workload or --connect, not both", file=sys.stderr)
        return 2
    if args.connect:
        return _cmd_stats_remote(args)
    if not args.workload:
        print("stats: need a workload or --connect", file=sys.stderr)
        return 2
    if args.prometheus:
        print("stats: --prometheus needs --connect", file=sys.stderr)
        return 2

    resolved = _resolve_run(args)
    if isinstance(resolved, int):
        return resolved
    factory, protocol = resolved

    tracer = TraceBus()
    spans = tracer.subscribe(SpanBuilder())
    registry = MetricsRegistry()
    snapshots = {}

    def capture(manager, waits) -> None:
        # Runs at the duration cutoff, while in-flight transactions still
        # hold their locks — the interesting moment to snapshot.
        snapshots["locks"] = manager_lock_tables(manager)
        snapshots["waits"] = waits_for_edges(waits)

    run_experiment(
        factory(),
        protocol,
        duration=args.duration,
        seed=args.seed,
        crash_rate=args.crash_rate,
        params=ClientParams(wait_policy=args.wait_policy),
        tracer=tracer,
        registry=registry,
        on_finish=capture,
    )
    if args.json:
        snapshot = registry.snapshot()
        snapshot["lock_tables"] = snapshots.get("locks", {})
        snapshot["waits_for"] = snapshots.get("waits", {})
        import json

        print(json.dumps(snapshot, indent=2, default=repr))
        return 0

    print(f"workload={args.workload} protocol={protocol.name} "
          f"duration={args.duration:g} seed={args.seed}")
    print()
    for name in ("txn.begun", "txn.committed", "txn.aborted",
                 "lock.conflicts", "lock.blocks", "lock.waits",
                 "lock.deadlocks", "compaction.advances",
                 "compaction.collapsed_ops", "wal.appends"):
        counter = registry.counters.get(name)
        if counter is not None:
            print(f"  {name:28s} {counter.value:>10g}")
    print()
    for name in ("txn.latency", "txn.abort_latency"):
        histogram = registry.histograms.get(name)
        if histogram is not None and histogram.total:
            print(render_histogram(histogram))
            print()
    breakdown = registry.conflict_breakdown()
    if breakdown:
        print("conflicts by operation pair:")
        for name, value in breakdown.items():
            print(f"  {name:52s} {value:>8g}")
        print()
    if registry.gauges:
        print("gauges:")
        for name, gauge in sorted(registry.gauges.items()):
            print(f"  {name:52s} {gauge.value!r:>8}")
        print()
    print("lock tables at the duration cutoff:")
    print(render_lock_tables(snapshots.get("locks", {})))
    print()
    print("waits-for graph (waiter -> holder):")
    print(render_waits_for(snapshots.get("waits", {})))
    if args.spans:
        print()
        print(render_spans(spans.spans, limit=args.spans))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .obs import (
        WIRE_LATENCY_BUCKETS,
        FlightRecorder,
        JSONLSink,
        MetricsRegistry,
        RegistrySink,
        SamplingProfiler,
        TraceBus,
    )
    from .server import ReproServer

    tracer = TraceBus()
    registry = MetricsRegistry()
    # The server's bus clock is real time, so the registry's latency
    # histograms need real-seconds buckets (the simulator's default
    # buckets would swallow every request into the first one).
    tracer.subscribe(RegistrySink(registry, latency_buckets=WIRE_LATENCY_BUCKETS))
    sinks = []
    if args.trace_file:
        sinks.append(tracer.subscribe(JSONLSink(args.trace_file)))
    profiler = SamplingProfiler() if args.profile_dir else None
    flight = None
    if not args.no_flight:
        flight = tracer.subscribe(
            FlightRecorder(
                args.flight_dir,
                queue_high_water=args.queue_limit,
                emit_to=tracer,
                profiler=profiler,
            )
        )
    pool = None
    if args.processes:
        from pathlib import Path

        from .server import ShardProcessPool

        data_dir = Path(args.data_dir)
        pool = ShardProcessPool(
            args.processes,
            data_dir,
            trace_dir=data_dir / "traces" if args.trace_file else None,
            protocol=args.protocol,
            durability=args.durability,
        )
    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        protocol=args.protocol,
        tracer=tracer,
        drain_grace=args.drain_grace,
        flush_on_drain=sinks,
        registry=registry,
        flight=flight,
        profiler=profiler,
        profile_dir=args.profile_dir,
        pool=pool,
    )
    async def run() -> int:
        # Objects are created after start(): in pool mode the shard
        # worker processes only exist once the server has spawned them.
        host, port = await server.start()
        for spec in args.object or []:
            name, _, adt = spec.partition(":")
            try:
                server.create_object(name, adt or "Account")
            except (KeyError, ValueError) as exc:
                print(f"serve: cannot create {spec!r}: {exc}", file=sys.stderr)
                await server.drain()
                return 2
        server.install_signal_handlers([signal.SIGTERM, signal.SIGINT])
        tier = (
            f"{args.processes} shard process(es), {args.durability} commit"
            if pool is not None
            else f"{server.workers} worker(s)"
        )
        print(
            f"serving on {host}:{port} "
            f"({tier}, queue limit {server.queue_limit}); "
            "SIGTERM/SIGINT drains gracefully",
            flush=True,
        )
        await server.serve_forever()
        return 0

    status = asyncio.run(run())
    if status:
        return status
    print(
        f"drained: {server.stats['requests']} request(s), "
        f"{server.stats['transactions_committed']} committed, "
        f"{server.stats['transactions_aborted']} aborted, "
        f"{server.stats['busy']} BUSY refusal(s)"
    )
    if args.trace_file:
        print(f"trace written to {args.trace_file}")
    if profiler is not None:
        print(
            f"profile ({profiler.samples} sample(s) @ {profiler.hz:g}Hz) "
            f"written to {args.profile_dir}"
        )
    if flight is not None and flight.dumps:
        print(
            f"flight recorder left {len(flight.dumps)} dump(s) "
            f"in {args.flight_dir} (last: {flight.last_reason})"
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .server import run_top

    address = _parse_address(args.connect)
    if address is None:
        print(f"top: bad --connect address {args.connect!r}", file=sys.stderr)
        return 2
    if args.iterations is not None and args.iterations <= 0:
        print("top: --iterations must be positive", file=sys.stderr)
        return 2
    try:
        frames = run_top(
            *address, interval=args.interval, iterations=args.iterations
        )
    except (OSError, ConnectionError) as exc:
        print(f"top: cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    return 0 if frames else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json
    import os

    from .obs import analyze_trace, read_jsonl, render_postmortem

    if not os.path.isfile(args.trace):
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    if args.slowest < 0:
        print("analyze: --slowest must be non-negative", file=sys.stderr)
        return 2
    report = analyze_trace(read_jsonl(args.trace), slowest=args.slowest)
    if not report["events"]:
        print(f"analyze: {args.trace} holds no events", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, indent=2, default=repr))
    else:
        sys.stdout.write(render_postmortem(report))
    return 0 if not report["violations"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os
    from pathlib import Path

    from .server.bench import (
        compare_artifacts,
        render_comparison,
        render_summary,
        run_serve_bench,
    )

    if args.target == "compare":
        if len(args.artifacts) != 2:
            print(
                "bench compare needs exactly two artifacts: OLD.json NEW.json",
                file=sys.stderr,
            )
            return 2
        payloads = []
        for path in args.artifacts:
            if not os.path.isfile(path):
                print(f"no such artifact: {path}", file=sys.stderr)
                return 2
            with open(path, encoding="utf-8") as handle:
                payloads.append(json.load(handle))
        comparison = compare_artifacts(*payloads)
        print(render_comparison(comparison))
        return 0 if comparison["ok"] else 1
    if args.artifacts:
        print(f"bench {args.target} takes no positional artifacts",
              file=sys.stderr)
        return 2
    if args.target == "shard":
        from .server.shardbench import render_shard_summary, run_shard_bench

        try:
            result = run_shard_bench(
                smoke=args.smoke, output_dir=Path(args.output_dir)
            )
        except AssertionError as exc:
            print(f"bench shard failed: {exc}", file=sys.stderr)
            return 1
        print(render_shard_summary(result))
        print(
            f"\nartifact written to "
            f"{Path(args.output_dir) / 'BENCH_shard.json'}"
        )
        return 0
    if args.target != "serve":  # pragma: no cover - argparse enforces choices
        print(f"unknown bench target {args.target!r}", file=sys.stderr)
        return 2
    try:
        result = run_serve_bench(
            smoke=args.smoke,
            workers=args.workers,
            queue_limit=args.queue_limit,
            duration=args.duration,
            output_dir=Path(args.output_dir),
            profile_dir=Path(args.profile_dir) if args.profile_dir else None,
        )
    except AssertionError as exc:
        print(f"bench serve failed: {exc}", file=sys.stderr)
        return 1
    print(render_summary(result))
    print(f"\nartifact written to {Path(args.output_dir) / 'BENCH_serve.json'}")
    if args.profile_dir:
        print(f"profile written to {args.profile_dir}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    import os

    from .obs import read_profile, render_profile

    if not os.path.exists(args.path):
        print(f"no such profile: {args.path}", file=sys.stderr)
        return 2
    if args.top <= 0:
        print("profile: --top must be positive", file=sys.stderr)
        return 2
    try:
        report = read_profile(args.path)
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
        print(f"profile: cannot load {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, default=repr))
        return 0
    sys.stdout.write(render_profile(report, top=args.top))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from .obs import AtomicityChecker, TraceBus, read_jsonl

    if args.trace_file:
        if args.workload:
            print(
                "check: give a workload or --trace-file, not both",
                file=sys.stderr,
            )
            return 2
        import os

        if not os.path.isfile(args.trace_file):
            print(f"no such trace file: {args.trace_file}", file=sys.stderr)
            return 2
        checker = AtomicityChecker()
        checker.replay(read_jsonl(args.trace_file))
    else:
        if not args.workload:
            print("check: need a workload or --trace-file", file=sys.stderr)
            return 2
        factory = _WORKLOADS.get(args.workload)
        if factory is None:
            print(
                f"unknown workload {args.workload!r}; "
                f"available: {', '.join(sorted(_WORKLOADS))}",
                file=sys.stderr,
            )
            return 2
        try:
            protocol = get_protocol(args.protocol)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        tracer = TraceBus()
        checker = tracer.subscribe(AtomicityChecker(emit_to=tracer))
        run_experiment(
            factory(),
            protocol,
            duration=args.duration,
            seed=args.seed,
            crash_rate=0.0 if protocol.engine == "optimistic" else args.crash_rate,
            params=ClientParams(wait_policy=args.wait_policy),
            tracer=tracer,
        )
    report = checker.report()
    if args.json:
        print(json.dumps(report, indent=2, default=repr))
    else:
        print(checker.render_report())
    return 0 if report["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid concurrency control for abstract data types "
        "(Herlihy & Weihl, 1988).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list ADTs, protocols and workloads")

    derive = commands.add_parser(
        "derive", help="derive dependency/commutativity tables for a type"
    )
    derive.add_argument("adt", help="type name, e.g. Account")
    derive.add_argument(
        "--values", nargs="+", help="value domain for the operation universe"
    )
    derive.add_argument(
        "--depth", type=int, default=3, help="bounded-search depth (default 3)"
    )

    audit = commands.add_parser(
        "audit",
        help="re-derive and verify every declared table (all types by default)",
    )
    audit.add_argument("adt", nargs="*", help="type names (default: all)")
    audit.add_argument(
        "--minimal", action="store_true", help="also check minimality (slower)"
    )

    compile_cmd = commands.add_parser(
        "compile",
        help="derive, verify (REP107) and compile the conflict tables to "
        "bitset modules under adts/_compiled/",
    )
    compile_cmd.add_argument("adt", nargs="*", help="type names (default: all)")
    compile_cmd.add_argument(
        "--check",
        action="store_true",
        help="verify the hand-written tables and fail when a generated "
        "module is missing or stale, without writing anything (the CI gate)",
    )

    report = commands.add_parser(
        "report", help="generate the full reproduction report (markdown)"
    )
    report.add_argument("--output", help="write to a file instead of stdout")
    report.add_argument(
        "--results",
        help="benchmarks/results directory to splice in (optional)",
    )

    simulate = commands.add_parser(
        "simulate", help="run a simulated workload under protocols"
    )
    simulate.add_argument(
        "workload", help="a workload name from `python -m repro list`"
    )
    simulate.add_argument(
        "--protocol",
        nargs="+",
        default=[p.name for p in ALL_PROTOCOLS],
        help="protocols to compare (default: all locking protocols)",
    )
    simulate.add_argument("--duration", type=float, default=300.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="Poisson rate of manager crashes (locking engines only)",
    )
    simulate.add_argument(
        "--crash-seed", type=int, default=None, help="separate seed for crash times"
    )
    simulate.add_argument(
        "--wal-dir",
        default=None,
        help="directory for on-disk write-ahead logs (one subdir per protocol)",
    )
    simulate.add_argument(
        "--verbose",
        action="store_true",
        help="also print per-protocol conflict breakdowns and gauges",
    )
    simulate.add_argument(
        "--trace-file",
        default=None,
        help="write the structured event trace (JSONL) here",
    )
    simulate.add_argument(
        "--check",
        action="store_true",
        help="attach the online atomicity checker and print a verdict "
        "per protocol (exit 1 on any violation)",
    )

    recover = commands.add_parser(
        "recover", help="rebuild a manager from a write-ahead log directory"
    )
    recover.add_argument("logdir", help="directory holding wal.jsonl (and checkpoint)")
    recover.add_argument(
        "--verbose",
        action="store_true",
        help="print every wal.replay / site.recover event",
    )
    recover.add_argument(
        "--trace-file",
        default=None,
        help="write the recovery event trace (JSONL) here",
    )

    def add_run_options(
        subparser: argparse.ArgumentParser, workload_optional: bool = False
    ) -> None:
        if workload_optional:
            subparser.add_argument(
                "workload", nargs="?", default=None,
                help="a workload name from `python -m repro list` "
                "(omit with --connect)",
            )
        else:
            subparser.add_argument(
                "workload", help="a workload name from `python -m repro list`"
            )
        subparser.add_argument(
            "--protocol", default="hybrid", help="one locking protocol"
        )
        subparser.add_argument("--duration", type=float, default=100.0)
        subparser.add_argument("--seed", type=int, default=0)
        subparser.add_argument(
            "--crash-rate", type=float, default=0.0,
            help="Poisson rate of injected manager crashes",
        )
        subparser.add_argument(
            "--wait-policy", choices=["retry", "block"], default="retry",
            help="refused-lock handling (block enables the waits-for graph)",
        )

    trace = commands.add_parser(
        "trace", help="run a workload and dump the structured event trace"
    )
    add_run_options(trace)
    trace.add_argument(
        "--format",
        choices=["jsonl", "spans", "events", "summary"],
        default="jsonl",
        help="jsonl (machine-readable), spans (per-transaction table), "
        "events, or summary (counts by kind)",
    )
    trace.add_argument(
        "--output", default=None, help="write JSONL here instead of stdout"
    )
    trace.add_argument(
        "--limit", type=int, default=None, help="show only the last N rows"
    )

    stats = commands.add_parser(
        "stats",
        help="run a workload and print histograms, gauges, and lock "
        "snapshots — or query a live server with --connect",
    )
    add_run_options(stats, workload_optional=True)
    stats.add_argument(
        "--json", action="store_true", help="dump the registry snapshot as JSON"
    )
    stats.add_argument(
        "--spans", type=int, default=0, metavar="N",
        help="also show the last N per-transaction spans",
    )
    stats.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="query a running server's in-band stats op instead of "
        "running a workload",
    )
    stats.add_argument(
        "--prometheus", action="store_true",
        help="with --connect: render the snapshot's metrics in Prometheus "
        "text exposition format",
    )

    lint = commands.add_parser(
        "lint",
        help="statically check the repo's concurrency-control invariants",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    serve = commands.add_parser(
        "serve", help="boot the socket serving tier (drains on SIGTERM)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7400, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="manager shards (objects are partitioned by name)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-worker queue high-water mark (BUSY beyond it)",
    )
    serve.add_argument(
        "--protocol", default="hybrid",
        help="conflict-relation protocol for served objects",
    )
    serve.add_argument(
        "--object", action="append", metavar="NAME[:ADT]",
        help="pre-create an object (repeatable; ADT defaults to Account)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds to let in-flight transactions finish on drain",
    )
    serve.add_argument(
        "--trace-file", default=None,
        help="record the event trace (JSONL) for offline certification",
    )
    serve.add_argument(
        "--flight-dir", default="flight",
        help="directory for flight-recorder anomaly dumps (default: flight)",
    )
    serve.add_argument(
        "--no-flight", action="store_true",
        help="disable the always-on flight recorder",
    )
    serve.add_argument(
        "--profile-dir", default=None,
        help="run the sampling wall-clock profiler and dump "
        "profile.folded / profile.json here on drain",
    )
    serve.add_argument(
        "--processes", type=int, default=0, metavar="N",
        help="shard across N WAL-backed worker processes instead of "
        "in-loop managers (shared-nothing; survives restarts)",
    )
    serve.add_argument(
        "--data-dir", default="serve_data",
        help="per-shard WAL/trace root for --processes (default: serve_data)",
    )
    serve.add_argument(
        "--durability", choices=["group", "append"], default="group",
        help="--processes WAL mode: one fsync per batch (group) or per "
        "append (append)",
    )

    bench = commands.add_parser(
        "bench", help="run a load benchmark and write its artifact"
    )
    bench.add_argument(
        "target", choices=["serve", "shard", "compare"],
        help="serve: run the load generator; shard: the multi-process "
        "group-commit sweep; compare: diff two artifacts",
    )
    bench.add_argument(
        "artifacts", nargs="*",
        help="for compare: OLD.json NEW.json (exit 1 on regression)",
    )
    bench.add_argument("--smoke", action="store_true",
                       help="short CI-sized sweep")
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument("--queue-limit", type=int, default=64)
    bench.add_argument(
        "--duration", type=float, default=None,
        help="seconds per sweep level (default: 0.6 smoke / 3.0 full)",
    )
    bench.add_argument(
        "--output-dir", default=".",
        help="directory for BENCH_serve.json and serve_trace.jsonl",
    )
    bench.add_argument(
        "--profile-dir", default=None,
        help="also run the sampling profiler and write profile.folded / "
        "profile.json (with critical-path and contention reports) here",
    )

    profile = commands.add_parser(
        "profile",
        help="render a profile dump: hottest frames/stacks, critical-path "
        "budget, contention table",
    )
    profile.add_argument(
        "path",
        help="a profile.json dump, a .folded collapsed-stack file, or a "
        "--profile-dir directory",
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows per table (default 15)",
    )
    profile.add_argument(
        "--json", action="store_true", help="print the raw report as JSON"
    )

    top = commands.add_parser(
        "top",
        help="live refresh view over a running server (rates, queues, "
        "latency quantiles, hottest conflicts)",
    )
    top.add_argument(
        "--connect", default="127.0.0.1:7400", metavar="HOST:PORT",
        help="server address (default 127.0.0.1:7400)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )

    analyze = commands.add_parser(
        "analyze",
        help="postmortem report from a recorded server trace or flight dump",
    )
    analyze.add_argument(
        "trace", help="a JSONL trace file (serve --trace-file or a "
        "flight-recorder dump)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="print the raw report as JSON"
    )
    analyze.add_argument(
        "--slowest", type=int, default=5, metavar="N",
        help="how many slowest transactions to show waterfalls for",
    )

    check = commands.add_parser(
        "check",
        help="certify a run hybrid atomic (live workload or recorded trace)",
    )
    check.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="a workload name to run live (omit with --trace-file)",
    )
    check.add_argument(
        "--protocol",
        default="hybrid",
        help="any protocol, including optimistic",
    )
    check.add_argument("--duration", type=float, default=100.0)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="Poisson rate of injected manager crashes (locking engines)",
    )
    check.add_argument(
        "--wait-policy", choices=["retry", "block"], default="retry",
        help="refused-lock handling for the live run",
    )
    check.add_argument(
        "--trace-file",
        default=None,
        help="replay this recorded JSONL trace instead of running a workload",
    )
    check.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "derive": _cmd_derive,
        "audit": _cmd_audit,
        "compile": _cmd_compile,
        "report": _cmd_report,
        "simulate": _cmd_simulate,
        "recover": _cmd_recover,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "check": _cmd_check,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "top": _cmd_top,
        "analyze": _cmd_analyze,
        "profile": _cmd_profile,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
