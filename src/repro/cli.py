"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show registered ADTs and protocols.
``derive <adt>``
    Derive the invalidated-by and failure-to-commute tables for a type
    from its serial specification and print them in the paper's style.
``simulate <workload>``
    Run a simulated workload under one or more protocols and print the
    metrics table.  ``--crash-rate`` injects Poisson manager crashes;
    ``--wal-dir`` attaches an on-disk write-ahead log per protocol so the
    run survives a real process kill.
``recover <logdir>``
    Rebuild a transaction manager from a ``--wal-dir`` directory
    (checkpoint + WAL replay) and print the recovered object states.

Examples::

    python -m repro list
    python -m repro derive Account
    python -m repro derive FIFOQueue --values 1 2 3
    python -m repro simulate queue --protocol hybrid commutativity
    python -m repro simulate account --duration 500 --seed 3
    python -m repro simulate account --crash-rate 0.01 --wal-dir /tmp/wals
    python -m repro recover /tmp/wals/hybrid
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .adts import get_adt, registry
from .analysis import (
    audit_adt,
    compare_relations,
    concurrency_score,
    derive_commutativity_figure,
    derive_figure,
    generate_report,
)
from .protocols import ALL_PROTOCOLS, OPTIMISTIC, get_protocol
from .sim import (
    AccountWorkload,
    DirectoryWorkload,
    FileWorkload,
    QueueWorkload,
    SemiQueueWorkload,
    SetWorkload,
    StackWorkload,
    run_experiment,
)

__all__ = ["main"]

#: Universe builders per type: positional args fed to ``adt.universe``.
_DEFAULT_DOMAINS = {
    "File": ((0, 1),),
    "FIFOQueue": ((1, 2),),
    "BoundedQueue": ((1, 2),),
    "Stack": ((1, 2),),
    "SemiQueue": ((1, 2),),
    "Account": ((2, 3), (50,)),
    "Counter": ((1, 2), (0, 1, 2)),
    "Set": ((1, 2),),
    "Directory": (("a",), (1, 2)),
}

#: Derivation depths per type: the extension types have larger universes,
#: where depth 2 already separates right from wrong tables and keeps the
#: audit fast; the paper types use depth 3 (Account's Fig 7-1 needs it).
_AUDIT_DEPTHS = {
    "Counter": (2, 2, 2),
    "Set": (2, 2, 2),
    "Directory": (2, 2, 2),
}

_WORKLOADS = {
    "queue": lambda: QueueWorkload(),
    "semiqueue": lambda: SemiQueueWorkload(),
    "account": lambda: AccountWorkload(),
    "file": lambda: FileWorkload(),
    "set": lambda: SetWorkload(),
    "directory": lambda: DirectoryWorkload(),
    "stack": lambda: StackWorkload(),
}


def _cmd_list(args: argparse.Namespace) -> int:
    print("abstract data types:")
    for name in registry():
        print(f"  {name}")
    print("\nprotocols:")
    for protocol in ALL_PROTOCOLS + [OPTIMISTIC]:
        print(f"  {protocol.name:14s} {protocol.description}")
    print("\nworkloads:")
    for name in sorted(_WORKLOADS):
        print(f"  {name}")
    return 0


def _universe_for(adt, values: Optional[List[str]]):
    if values:
        parsed = [int(v) if v.lstrip("-").isdigit() else v for v in values]
        return adt.universe(tuple(parsed))
    domains = _DEFAULT_DOMAINS.get(adt.name, ((1, 2),))
    return adt.universe(*domains)


def _cmd_derive(args: argparse.Namespace) -> int:
    try:
        adt = get_adt(args.adt)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    universe = _universe_for(adt, args.values)
    report = derive_figure(
        adt, universe, f"{adt.name}: invalidated-by (dependency relation)",
        max_h1=args.depth, max_h2=max(1, args.depth - 1),
    )
    print(report.render())
    mc = derive_commutativity_figure(
        adt, universe, f"{adt.name}: failure to commute", max_h=args.depth
    )
    print()
    print(mc.render())
    comparison = compare_relations(adt.conflict, mc.derived, universe)
    print()
    print(f"hybrid vs commutativity conflicts : {comparison}")
    print(
        "concurrency scores                : "
        f"hybrid {concurrency_score(adt.conflict, universe):.3f}, "
        f"commutativity {concurrency_score(adt.commutativity_conflict, universe):.3f}"
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    names = args.adt or registry()
    all_passed = True
    for name in names:
        try:
            adt = get_adt(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        universe = _universe_for(adt, None)
        max_h1, max_h2, mc_depth = _AUDIT_DEPTHS.get(adt.name, (3, 2, 3))
        report = audit_adt(
            adt,
            universe,
            max_h1=max_h1,
            max_h2=max_h2,
            mc_depth=mc_depth,
            check_minimal=args.minimal,
        )
        print(report.render())
        print()
        all_passed = all_passed and report.passed
    return 0 if all_passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    results = pathlib.Path(args.results) if args.results else None
    text = generate_report(results_dir=results)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    factory = _WORKLOADS.get(args.workload)
    if factory is None:
        print(
            f"unknown workload {args.workload!r}; "
            f"available: {', '.join(sorted(_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    try:
        protocols = [get_protocol(name) for name in args.protocol]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    fields = [
        "committed",
        "aborted",
        "conflicts",
        "throughput",
        "mean_latency",
        "abort_rate",
        "validation_failures",
    ]
    if args.crash_rate > 0:
        fields.append("crashes")
    header = f"{'protocol':14s}" + "".join(f"{f:>20s}" for f in fields)
    print(header)
    print("-" * len(header))
    if (args.crash_rate > 0 or args.wal_dir) and any(
        p.engine == "optimistic" for p in protocols
    ):
        print(
            "note: crash/WAL flags apply to locking engines only; "
            "the optimistic engine runs without them",
            file=sys.stderr,
        )
    for protocol in protocols:
        wal = None
        if args.wal_dir and protocol.engine != "optimistic":
            import os

            from .recovery import FileWAL

            wal = FileWAL(os.path.join(args.wal_dir, protocol.name))
        metrics = run_experiment(
            factory(),
            protocol,
            duration=args.duration,
            seed=args.seed,
            crash_rate=0.0 if protocol.engine == "optimistic" else args.crash_rate,
            crash_seed=args.crash_seed,
            wal=wal,
        )
        row = metrics.as_row()
        print(
            f"{protocol.name:14s}"
            + "".join(f"{row.get(f, 0):>20}" for f in fields)
        )
    if args.wal_dir:
        print(f"\nwrite-ahead logs under {args.wal_dir}/<protocol>")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import os

    from .recovery import (
        FileCheckpointStore,
        FileWAL,
        committed_state_set,
        recover_manager,
    )

    logdir = args.logdir
    if not os.path.isfile(os.path.join(logdir, "wal.jsonl")):
        print(f"no wal.jsonl under {logdir!r}", file=sys.stderr)
        return 2
    from .recovery import RecoveryError, WalCorruption

    wal = FileWAL(logdir)
    store = FileCheckpointStore(logdir)
    if store.load() is None:
        store = None
    try:
        manager, report = recover_manager(wal, store=store)
    except (WalCorruption, RecoveryError) as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    print()
    print(f"{'object':20s}{'committed state':>30s}")
    print("-" * 50)
    for name in sorted(manager.objects):
        states = committed_state_set(manager.object(name).machine)
        print(f"{name:20s}{str(sorted(states, key=repr)[0]):>30s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid concurrency control for abstract data types "
        "(Herlihy & Weihl, 1988).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list ADTs, protocols and workloads")

    derive = commands.add_parser(
        "derive", help="derive dependency/commutativity tables for a type"
    )
    derive.add_argument("adt", help="type name, e.g. Account")
    derive.add_argument(
        "--values", nargs="+", help="value domain for the operation universe"
    )
    derive.add_argument(
        "--depth", type=int, default=3, help="bounded-search depth (default 3)"
    )

    audit = commands.add_parser(
        "audit",
        help="re-derive and verify every declared table (all types by default)",
    )
    audit.add_argument("adt", nargs="*", help="type names (default: all)")
    audit.add_argument(
        "--minimal", action="store_true", help="also check minimality (slower)"
    )

    report = commands.add_parser(
        "report", help="generate the full reproduction report (markdown)"
    )
    report.add_argument("--output", help="write to a file instead of stdout")
    report.add_argument(
        "--results",
        help="benchmarks/results directory to splice in (optional)",
    )

    simulate = commands.add_parser(
        "simulate", help="run a simulated workload under protocols"
    )
    simulate.add_argument(
        "workload", help="a workload name from `python -m repro list`"
    )
    simulate.add_argument(
        "--protocol",
        nargs="+",
        default=[p.name for p in ALL_PROTOCOLS],
        help="protocols to compare (default: all locking protocols)",
    )
    simulate.add_argument("--duration", type=float, default=300.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="Poisson rate of manager crashes (locking engines only)",
    )
    simulate.add_argument(
        "--crash-seed", type=int, default=None, help="separate seed for crash times"
    )
    simulate.add_argument(
        "--wal-dir",
        default=None,
        help="directory for on-disk write-ahead logs (one subdir per protocol)",
    )

    recover = commands.add_parser(
        "recover", help="rebuild a manager from a write-ahead log directory"
    )
    recover.add_argument("logdir", help="directory holding wal.jsonl (and checkpoint)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "derive": _cmd_derive,
        "audit": _cmd_audit,
        "report": _cmd_report,
        "simulate": _cmd_simulate,
        "recover": _cmd_recover,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
