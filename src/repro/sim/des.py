"""A minimal deterministic discrete-event simulator.

The paper's concurrency claims are about *which interleavings a protocol
admits*, not about wall-clock speed on 1988 hardware, and CPython's GIL
makes real-thread measurements of lock algorithms meaningless.  The
benchmark harness therefore drives the runtime from a classical
discrete-event simulation: clients take turns at simulated timestamps,
operations have configurable service times, refused locks cost a backoff
delay, and throughput/latency are measured in simulated time.  Everything
is seeded and deterministic, so benchmark output is reproducible bit for
bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

__all__ = ["Simulator"]


class Simulator:
    """Event loop over a priority queue of timed callbacks.

    Ties in time are broken by scheduling order, making runs fully
    deterministic.
    """

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` time units from now (>= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), callback)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (time, next(self._sequence), callback))

    def run_until(self, end: float) -> None:
        """Process events with timestamps <= ``end``; advance the clock.

        Events scheduled during processing are handled in order.  The clock
        finishes at ``end`` even if the queue drains early.
        """
        while self._queue and self._queue[0][0] <= end:
            time, _seq, callback = heapq.heappop(self._queue)
            self._now = time
            callback()
        self._now = end

    def run(self) -> None:
        """Process every remaining event."""
        while self._queue:
            time, _seq, callback = heapq.heappop(self._queue)
            self._now = time
            callback()

    def empty(self) -> bool:
        """True when no events remain."""
        return not self._queue
