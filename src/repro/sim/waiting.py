"""Blocked-transaction bookkeeping: waits-for graph, deadlock detection.

The locking protocol itself only says a refused lock request "is later
retried"; *how* the requester waits is a scheduling policy.  The
simulator supports two:

* ``retry`` — poll again after a backoff (the default; livelock-free
  under fair scheduling, no deadlock possible because nobody holds a
  wait);
* ``block`` — sleep until the lock-holding transaction completes, the
  classic DBMS discipline.  Blocking introduces deadlock, so this module
  maintains the waits-for graph and refuses (with
  :class:`DeadlockDetected`) any wait that would close a cycle — the
  standard detect-and-abort-the-requester scheme.

The registry is engine-agnostic: it maps transaction names to wakeup
callbacks and edges, and the simulation clients drive it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.errors import ReproError

__all__ = ["DeadlockDetected", "WaitRegistry"]


class DeadlockDetected(ReproError):
    """Blocking on this holder would create a waits-for cycle."""

    def __init__(self, waiter: str, holder: str, cycle: List[str]):
        super().__init__(
            f"{waiter} waiting for {holder} closes the cycle "
            + " -> ".join(cycle + [cycle[0]])
        )
        self.waiter = waiter
        self.holder = holder
        self.cycle = cycle


class WaitRegistry:
    """Waits-for edges between transactions, with wakeup callbacks.

    A transaction has at most one outstanding wait (transactions are
    single-threaded); a holder may have many waiters.  ``release`` must be
    called when a transaction completes so its waiters resume.
    """

    def __init__(self, tracer=None):
        #: waiter -> holder (at most one outgoing edge per waiter).
        self._waiting_for: Dict[str, str] = {}
        #: holder -> list of (waiter, callback).
        self._waiters: Dict[str, List[tuple]] = {}
        #: Optional :class:`repro.obs.TraceBus` (None = no tracing).
        self.tracer = tracer

    def edges(self) -> Dict[str, str]:
        """A copy of the waits-for graph (waiter → holder)."""
        return dict(self._waiting_for)

    def waiting_for(self, waiter: str) -> Optional[str]:
        """The transaction ``waiter`` is blocked on, if any."""
        return self._waiting_for.get(waiter)

    def waiter_count(self) -> int:
        """How many transactions are currently blocked."""
        return len(self._waiting_for)

    def _would_deadlock(self, waiter: str, holder: str) -> Optional[List[str]]:
        """Walk holder's wait chain; a path back to ``waiter`` is a cycle."""
        path = [waiter]
        current: Optional[str] = holder
        while current is not None:
            path.append(current)
            if current == waiter:
                return path[:-1]
            current = self._waiting_for.get(current)
        return None

    def wait(self, waiter: str, holder: str, wake: Callable[[], None]) -> None:
        """Block ``waiter`` on ``holder``; ``wake`` runs at release.

        Raises :class:`DeadlockDetected` — without recording the edge —
        when the wait would close a cycle; the caller should abort and
        restart the waiter (deadlock resolution by victimising the
        requester).
        """
        if waiter == holder:
            raise ValueError("a transaction cannot wait for itself")
        if waiter in self._waiting_for:
            raise ValueError(f"{waiter} is already waiting")
        cycle = self._would_deadlock(waiter, holder)
        tracer = self.tracer
        if cycle is not None:
            if tracer is not None:
                tracer.emit(
                    "lock.deadlock",
                    transaction=waiter,
                    holder=holder,
                    cycle=list(cycle),
                )
            raise DeadlockDetected(waiter, holder, cycle)
        if tracer is not None:
            tracer.emit("lock.wait", transaction=waiter, holder=holder)
        self._waiting_for[waiter] = holder
        self._waiters.setdefault(holder, []).append((waiter, wake))

    def release(self, completed: str) -> int:
        """Wake everyone blocked on ``completed``; returns the count."""
        entries = self._waiters.pop(completed, [])
        for waiter, wake in entries:
            self._waiting_for.pop(waiter, None)
            wake()
        return len(entries)

    def cancel(self, waiter: str) -> None:
        """Withdraw a wait (e.g. the waiter was aborted externally)."""
        holder = self._waiting_for.pop(waiter, None)
        if holder is None:
            return
        entries = self._waiters.get(holder, [])
        self._waiters[holder] = [e for e in entries if e[0] != waiter]
