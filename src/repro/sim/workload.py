"""Workload generators for the simulation benchmarks.

A workload declares the objects a run uses and produces, per client, the
*script* of one transaction: a list of ``(object, operation, args)``
steps.  Scripts are regenerated for every transaction (and on restart
after an abort the client draws a fresh script — standard restart
semantics).

The built-in workloads mirror the scenarios the paper argues about:

* :class:`QueueWorkload` — producers enqueue, consumers dequeue; the
  hybrid/Fig 4-2 protocol lets producers run concurrently while
  commutativity locking serialises them (experiment C-Q).
* :class:`SemiQueueWorkload` — the same shape on the non-deterministic
  SemiQueue; both protocols allow concurrency (experiment C-S).
* :class:`AccountWorkload` — banking mix of Credit/Debit/Post over
  several accounts; hybrid lets Post run concurrently with
  Credit/successful Debit, commutativity does not (experiment C-A).
* :class:`FileWorkload` — read/write mix exhibiting the Thomas-write-rule
  generalisation (concurrent blind writes).
* :class:`SetWorkload` — membership/insert/remove mix on a Set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from ..adts.account import make_account_adt
from ..adts.base import ADT
from ..adts.directory import make_directory_adt
from ..adts.file import make_file_adt
from ..adts.queue import make_queue_adt
from ..adts.semiqueue import make_semiqueue_adt
from ..adts.set import make_set_adt
from ..adts.stack import make_stack_adt

__all__ = [
    "Step",
    "Workload",
    "QueueWorkload",
    "SemiQueueWorkload",
    "AccountWorkload",
    "FileWorkload",
    "SetWorkload",
    "DirectoryWorkload",
    "StackWorkload",
]

#: One transaction step: (object name, operation name, argument tuple).
Step = Tuple[str, str, Tuple[Any, ...]]


class Workload:
    """Base class: declares objects and per-client transaction scripts."""

    #: Short name used in benchmark tables.
    name: str = "workload"

    def objects(self) -> List[Tuple[str, ADT]]:
        """The (name, ADT) pairs the workload operates on."""
        raise NotImplementedError

    def client_count(self) -> int:
        """How many concurrent clients the workload defines."""
        raise NotImplementedError

    def script(self, client: int, rng: random.Random) -> List[Step]:
        """The steps of the next transaction for ``client``."""
        raise NotImplementedError


@dataclass
class QueueWorkload(Workload):
    """Producers enqueue unique items; consumers drain them.

    The paper's motivating scenario: enqueues do not commute, yet under
    the hybrid protocol concurrent producers never conflict (Figure 4-2);
    commit timestamps order their items.
    """

    producers: int = 4
    consumers: int = 1
    ops_per_transaction: int = 4
    #: Which minimal dependency relation drives the hybrid protocol:
    #: "fig42" (concurrent enqueues) or "fig43" (commutativity-shaped) —
    #: the ablation knob for the paper's incomparability discussion.
    dependency: str = "fig42"
    name: str = "queue"
    _next_item: int = field(default=0, repr=False)

    def objects(self) -> List[Tuple[str, ADT]]:
        return [("Q", make_queue_adt(self.dependency))]

    def client_count(self) -> int:
        return self.producers + self.consumers

    def script(self, client: int, rng: random.Random) -> List[Step]:
        if client < self.producers:
            steps: List[Step] = []
            for _ in range(self.ops_per_transaction):
                self._next_item += 1
                steps.append(("Q", "Enq", (self._next_item,)))
            return steps
        return [("Q", "Deq", ()) for _ in range(self.ops_per_transaction)]


@dataclass
class SemiQueueWorkload(Workload):
    """Producers insert unique items; consumers remove some item."""

    producers: int = 4
    consumers: int = 1
    ops_per_transaction: int = 4
    name: str = "semiqueue"
    _next_item: int = field(default=0, repr=False)

    def objects(self) -> List[Tuple[str, ADT]]:
        return [("S", make_semiqueue_adt())]

    def client_count(self) -> int:
        return self.producers + self.consumers

    def script(self, client: int, rng: random.Random) -> List[Step]:
        if client < self.producers:
            steps: List[Step] = []
            for _ in range(self.ops_per_transaction):
                self._next_item += 1
                steps.append(("S", "Ins", (self._next_item,)))
            return steps
        return [("S", "Rem", ()) for _ in range(self.ops_per_transaction)]


@dataclass
class AccountWorkload(Workload):
    """A banking mix over several accounts.

    Each transaction performs ``ops_per_transaction`` operations on
    randomly chosen accounts: credits with probability ``credit_p``,
    interest postings with probability ``post_p``, debits otherwise.
    Debit amounts are drawn small relative to typical balances, so
    overdrafts are rare — the regime in which Figure 4-5's result-aware
    conflicts shine (Credit/Post never wait for successful debits).
    """

    clients: int = 6
    accounts: int = 2
    ops_per_transaction: int = 3
    credit_p: float = 0.4
    post_p: float = 0.2
    max_amount: int = 20
    post_percent: int = 5
    name: str = "account"

    def objects(self) -> List[Tuple[str, ADT]]:
        return [
            (f"A{i}", make_account_adt(initial=1000)) for i in range(self.accounts)
        ]

    def client_count(self) -> int:
        return self.clients

    def script(self, client: int, rng: random.Random) -> List[Step]:
        steps: List[Step] = []
        for _ in range(self.ops_per_transaction):
            account = f"A{rng.randrange(self.accounts)}"
            roll = rng.random()
            if roll < self.credit_p:
                steps.append((account, "Credit", (rng.randint(1, self.max_amount),)))
            elif roll < self.credit_p + self.post_p:
                steps.append((account, "Post", (self.post_percent,)))
            else:
                steps.append((account, "Debit", (rng.randint(1, self.max_amount),)))
        return steps


@dataclass
class FileWorkload(Workload):
    """A read/write mix over register files.

    With a low ``read_p`` this is the blind-write regime where the hybrid
    protocol's Thomas-write-rule generalisation lets writers run
    concurrently.
    """

    clients: int = 6
    files: int = 2
    ops_per_transaction: int = 3
    read_p: float = 0.2
    values: Sequence[Any] = (0, 1, 2, 3)
    name: str = "file"

    def objects(self) -> List[Tuple[str, ADT]]:
        return [(f"F{i}", make_file_adt(initial=0)) for i in range(self.files)]

    def client_count(self) -> int:
        return self.clients

    def script(self, client: int, rng: random.Random) -> List[Step]:
        steps: List[Step] = []
        for _ in range(self.ops_per_transaction):
            name = f"F{rng.randrange(self.files)}"
            if rng.random() < self.read_p:
                steps.append((name, "Read", ()))
            else:
                steps.append((name, "Write", (rng.choice(tuple(self.values)),)))
        return steps


@dataclass
class SetWorkload(Workload):
    """Insert/remove/member mix over a shared Set."""

    clients: int = 6
    ops_per_transaction: int = 3
    member_p: float = 0.3
    values: Sequence[Any] = tuple(range(12))
    name: str = "set"

    def objects(self) -> List[Tuple[str, ADT]]:
        return [("S", make_set_adt())]

    def client_count(self) -> int:
        return self.clients

    def script(self, client: int, rng: random.Random) -> List[Step]:
        steps: List[Step] = []
        for _ in range(self.ops_per_transaction):
            value = rng.choice(tuple(self.values))
            roll = rng.random()
            if roll < self.member_p:
                steps.append(("S", "Member", (value,)))
            elif roll < self.member_p + (1 - self.member_p) / 2:
                steps.append(("S", "Insert", (value,)))
            else:
                steps.append(("S", "Remove", (value,)))
        return steps


@dataclass
class DirectoryWorkload(Workload):
    """A keyed workload over one shared Directory with Zipf-like key skew.

    ``skew = 0`` picks keys uniformly; larger values concentrate traffic
    on a few hot keys (weights proportional to ``1 / rank**skew``).  The
    Directory's dependency relation is keyed, so the hybrid protocol
    degenerates to per-key locking — the skew knob controls how much that
    is worth over untyped whole-object locking.
    """

    clients: int = 6
    ops_per_transaction: int = 3
    key_count: int = 16
    skew: float = 0.0
    lookup_p: float = 0.4
    values: Sequence[Any] = (1, 2, 3)
    name: str = "directory"

    def objects(self) -> List[Tuple[str, ADT]]:
        return [("D", make_directory_adt())]

    def client_count(self) -> int:
        return self.clients

    def _pick_key(self, rng: random.Random) -> str:
        weights = [1.0 / (rank ** self.skew) for rank in range(1, self.key_count + 1)]
        (index,) = rng.choices(range(self.key_count), weights=weights)
        return f"k{index}"

    def script(self, client: int, rng: random.Random) -> List[Step]:
        steps: List[Step] = []
        for _ in range(self.ops_per_transaction):
            key = self._pick_key(rng)
            roll = rng.random()
            if roll < self.lookup_p:
                steps.append(("D", "Lookup", (key,)))
            elif roll < self.lookup_p + 0.3:
                steps.append(("D", "Bind", (key, rng.choice(tuple(self.values)))))
            elif roll < self.lookup_p + 0.5:
                steps.append(("D", "Rebind", (key, rng.choice(tuple(self.values)))))
            else:
                steps.append(("D", "Unbind", (key,)))
        return steps


@dataclass
class StackWorkload(Workload):
    """Producers push unique items; consumers pop (LIFO twin of the
    queue workload; hybrid admits concurrent pushes)."""

    producers: int = 4
    consumers: int = 1
    ops_per_transaction: int = 4
    name: str = "stack"
    _next_item: int = field(default=0, repr=False)

    def objects(self) -> List[Tuple[str, ADT]]:
        return [("S", make_stack_adt())]

    def client_count(self) -> int:
        return self.producers + self.consumers

    def script(self, client: int, rng: random.Random) -> List[Step]:
        if client < self.producers:
            steps: List[Step] = []
            for _ in range(self.ops_per_transaction):
                self._next_item += 1
                steps.append(("S", "Push", (self._next_item,)))
            return steps
        return [("S", "Pop", ()) for _ in range(self.ops_per_transaction)]
