"""Simulated experiments: clients driving the runtime under a protocol.

:func:`run_experiment` builds a :class:`~repro.runtime.TransactionManager`
whose objects use the given protocol's conflict relations, spawns one
simulated client per workload slot, and runs the discrete-event loop for a
fixed simulated duration.  Clients repeatedly:

1. draw a transaction script from the workload,
2. execute its steps, each costing ``op_time``; a refused lock costs a
   ``backoff`` delay and a retry of the same step; a would-block partial
   operation likewise waits and retries,
3. after too many consecutive refusals of one step, abort and restart the
   transaction with a fresh script (counting an abort),
4. commit (costing ``commit_time``) and start over after ``think_time``.

The knobs are identical across protocols within a comparison, so measured
differences come only from which interleavings each conflict relation
admits — the paper's quantity of interest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.errors import LockConflict, TransactionAborted, WouldBlock
from ..core.compaction import CompactingLockMachine
from ..protocols.base import HYBRID, ProtocolSpec
from ..runtime.manager import TransactionManager
from ..runtime.optimistic import OptimisticTransactionManager, ValidationFailed
from ..runtime.transaction import Transaction
from .des import Simulator
from .metrics import Metrics
from .waiting import DeadlockDetected, WaitRegistry
from .workload import Step, Workload

__all__ = ["ClientParams", "run_experiment", "compare_protocols"]


@dataclass(frozen=True)
class ClientParams:
    """Timing and scheduling knobs shared by every client in a run.

    ``wait_policy`` selects how a refused lock is handled: ``"retry"``
    polls again after ``backoff`` (deadlock-free); ``"block"`` sleeps
    until the holding transaction completes, with waits-for deadlock
    detection aborting the requester on a cycle.
    """

    op_time: float = 1.0
    commit_time: float = 1.0
    think_time: float = 0.5
    backoff: float = 1.0
    max_step_retries: int = 12
    wait_policy: str = "retry"

    def __post_init__(self):
        if self.wait_policy not in ("retry", "block"):
            raise ValueError("wait_policy must be 'retry' or 'block'")

    def jittered(self, rng: random.Random, base: float) -> float:
        """Exponentially distributed delay with the given mean."""
        return rng.expovariate(1.0 / base) if base > 0 else 0.0


class _Client:
    """One simulated client: a little state machine over the event loop."""

    def __init__(
        self,
        index: int,
        simulator: Simulator,
        manager: TransactionManager,
        workload: Workload,
        params: ClientParams,
        metrics: Metrics,
        rng: random.Random,
        registry: Optional["WaitRegistry"] = None,
    ):
        self.index = index
        self.simulator = simulator
        self.manager = manager
        self.workload = workload
        self.params = params
        self.metrics = metrics
        self.rng = rng
        self.registry = registry
        self.transaction: Optional[Transaction] = None
        self.script: List[Step] = []
        self.position = 0
        self.retries = 0
        self.started_at = 0.0

    # Each method schedules the next; the loop starts with start().

    def start(self) -> None:
        """Begin the first transaction after a think-time stagger."""
        self.simulator.schedule(
            self.params.jittered(self.rng, self.params.think_time), self._begin
        )

    def _begin(self) -> None:
        self.transaction = self.manager.begin()
        self.script = self.workload.script(self.index, self.rng)
        self.position = 0
        self.retries = 0
        self.started_at = self.simulator.now
        self._schedule_step(self.params.jittered(self.rng, self.params.op_time))

    def _schedule_step(self, delay: float) -> None:
        self.simulator.schedule(delay, self._step)

    def _step(self) -> None:
        if self.position >= len(self.script):
            self._commit()
            return
        obj, operation, args = self.script[self.position]
        try:
            self.manager.invoke(self.transaction, obj, operation, *args)
        except TransactionAborted:
            # A crash tick aborted us underneath (already counted there):
            # just restart with a fresh script.
            self._restart_after_crash()
            return
        except LockConflict as conflict:
            self.metrics.conflicts += 1
            if self.registry is not None and conflict.holder:
                self._block_on(conflict.holder)
            else:
                self._handle_retry()
            return
        except WouldBlock:
            self.metrics.blocks += 1
            self._handle_retry()
            return
        self.metrics.operations += 1
        self.position += 1
        self.retries = 0
        self._schedule_step(self.params.jittered(self.rng, self.params.op_time))

    def _block_on(self, holder: str) -> None:
        """Block policy: sleep until the holder completes (deadlock-safe)."""
        try:
            self.registry.wait(
                self.transaction.name,
                holder,
                wake=lambda: self._schedule_step(0.0),
            )
        except DeadlockDetected:
            self.metrics.deadlocks += 1
            self._abort_and_restart()

    def _abort_and_restart(self) -> None:
        self.manager.abort(self.transaction)
        if self.registry is not None:
            self.registry.release(self.transaction.name)
        self.metrics.aborted += 1
        self.simulator.schedule(
            self.params.jittered(self.rng, self.params.think_time), self._begin
        )

    def _handle_retry(self) -> None:
        self.retries += 1
        if self.retries > self.params.max_step_retries:
            self._abort_and_restart()
            return
        self._schedule_step(self.params.jittered(self.rng, self.params.backoff))

    def _restart_after_crash(self) -> None:
        """The manager's crash already aborted (and counted) us."""
        if self.registry is not None:
            self.registry.release(self.transaction.name)
        self.simulator.schedule(
            self.params.jittered(self.rng, self.params.think_time), self._begin
        )

    def _commit(self) -> None:
        try:
            self.manager.commit(self.transaction)
        except TransactionAborted:
            self._restart_after_crash()
            return
        except ValidationFailed:
            # Optimistic engine only: certification failed; the manager
            # already aborted the transaction — restart with a new script.
            self.metrics.validation_failures += 1
            self.metrics.aborted += 1
            self.simulator.schedule(
                self.params.jittered(self.rng, self.params.think_time),
                self._begin,
            )
            return
        if self.registry is not None:
            self.registry.release(self.transaction.name)
        self.metrics.committed += 1
        self.metrics.total_latency += self.simulator.now - self.started_at
        self.simulator.schedule(
            self.params.jittered(self.rng, self.params.think_time)
            + self.params.jittered(self.rng, self.params.commit_time),
            self._begin,
        )


def run_experiment(
    workload: Workload,
    protocol: ProtocolSpec = HYBRID,
    duration: float = 500.0,
    seed: int = 0,
    params: Optional[ClientParams] = None,
    crash_rate: float = 0.0,
    crash_seed: Optional[int] = None,
    wal=None,
    tracer=None,
    registry=None,
    on_finish=None,
) -> Metrics:
    """Run one workload under one protocol; return the metrics.

    Deterministic for fixed ``(workload, protocol, duration, seed,
    params)``.  ``crash_rate > 0`` injects Poisson manager crashes that
    abort every in-flight transaction (locking engine only); ``wal``
    attaches a write-ahead log to the manager so the run is recoverable
    with :func:`repro.recovery.recover_manager`.

    Observability (both engines): ``tracer`` is a
    :class:`repro.obs.TraceBus` whose clock is rebound to simulated time
    and fed to every instrumented component; ``registry`` is a
    :class:`repro.obs.MetricsRegistry` that receives event-derived
    counters/histograms during the run, plus horizon and
    retained-intentions gauges and the final ``Metrics`` row at the end.
    ``on_finish(manager, wait_registry)`` runs before returning, while
    in-flight transactions still hold locks — the hook ``repro stats``
    uses to snapshot lock tables and the waits-for graph.
    """
    params = params or ClientParams()
    simulator = Simulator()
    registry_sink = None
    if registry is not None:
        from ..obs import RegistrySink, TraceBus

        if tracer is None:
            tracer = TraceBus()
        registry_sink = tracer.subscribe(RegistrySink(registry))
    if tracer is not None:
        tracer.clock = lambda: simulator.now
    if protocol.engine == "optimistic":
        if wal is not None or crash_rate > 0:
            raise ValueError(
                "durability and crash injection require the locking engine"
            )
        manager = OptimisticTransactionManager(tracer=tracer)
        for name, adt in workload.objects():
            manager.create_object(name, adt, dependency=protocol.conflict_for(adt))
    else:
        manager = TransactionManager(wal=wal, tracer=tracer)
        for name, adt in workload.objects():
            manager.create_object(name, adt, protocol=protocol)
    metrics = Metrics()
    if crash_rate > 0:
        crash_rng = random.Random(f"crash/{crash_seed if crash_seed is not None else seed}")

        def crash_tick() -> None:
            victims = manager.crash()
            metrics.crashes += 1
            metrics.aborted += len(victims)
            if tracer is not None:
                tracer.emit("site.crash", site="manager", hard=False, victims=victims)
            if waits is not None:
                for victim in victims:
                    waits.release(victim)
            simulator.schedule(crash_rng.expovariate(crash_rate), crash_tick)

        simulator.schedule(crash_rng.expovariate(crash_rate), crash_tick)
    waits = WaitRegistry(tracer=tracer) if params.wait_policy == "block" else None
    for index in range(workload.client_count()):
        client = _Client(
            index,
            simulator,
            manager,
            workload,
            params,
            metrics,
            random.Random(f"{seed}/{index}"),
            registry=waits,
        )
        client.start()
    simulator.run_until(duration)
    metrics.duration = duration
    metrics.retained_intentions = sum(
        managed.machine.retained_intentions()
        for managed in manager.objects.values()
        if isinstance(getattr(managed, "machine", None), CompactingLockMachine)
    )
    if registry_sink is not None:
        obs_registry = registry
        for name, managed in sorted(manager.objects.items()):
            machine = getattr(managed, "machine", None)
            if isinstance(machine, CompactingLockMachine):
                obs_registry.gauge(f"compaction.horizon[{name}]").set(
                    machine.horizon()
                )
                obs_registry.gauge(f"compaction.retained[{name}]").set(
                    machine.retained_intentions()
                )
                obs_registry.gauge(f"compaction.forgotten_ops[{name}]").set(
                    machine.forgotten_operations
                )
        obs_registry.gauge("retained_intentions").set(metrics.retained_intentions)
        obs_registry.absorb_metrics(metrics)
        tracer.unsubscribe(registry_sink)
    if on_finish is not None:
        on_finish(manager, waits)
    return metrics


def compare_protocols(
    workload_factory,
    protocols: Sequence[ProtocolSpec],
    duration: float = 500.0,
    seed: int = 0,
    params: Optional[ClientParams] = None,
) -> Dict[str, Metrics]:
    """Run the same workload under several protocols.

    ``workload_factory`` is called once per protocol so stateful workloads
    (unique item counters) start fresh each time.
    """
    return {
        protocol.name: run_experiment(
            workload_factory(), protocol, duration=duration, seed=seed, params=params
        )
        for protocol in protocols
    }
