"""Metrics collected by simulated workload runs."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Counters and derived rates for one simulation run.

    ``conflicts`` counts lock refusals (the quantity the paper's protocol
    minimises); ``blocks`` counts would-block retries of partial
    operations (a property of the workload, not the protocol);
    ``aborts`` counts transactions that gave up after exhausting their
    retry budget and restarted from scratch.
    """

    duration: float = 0.0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    blocks: int = 0
    operations: int = 0
    total_latency: float = 0.0
    #: Operations retained in intentions lists at the end (compaction metric).
    retained_intentions: int = 0
    #: Commit-time certification failures (optimistic engine only).
    validation_failures: int = 0
    #: Waits-for cycles resolved by aborting the requester (block policy).
    deadlocks: int = 0
    #: Fail-stop crashes injected into the run (fault-injection metric).
    crashes: int = 0
    #: Successful checkpoint + WAL-replay recoveries.
    recoveries: int = 0
    #: Log records replayed across all recoveries.
    replayed_records: int = 0
    #: Total wall-clock seconds spent in recovery (not simulated time).
    recovery_time: float = 0.0

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated time unit."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean begin-to-commit latency of committed transactions."""
        return self.total_latency / self.committed if self.committed else 0.0

    @property
    def conflict_rate(self) -> float:
        """Lock refusals per executed operation attempt."""
        attempts = self.operations + self.conflicts
        return self.conflicts / attempts if attempts else 0.0

    @property
    def abort_rate(self) -> float:
        """Aborts per started transaction."""
        started = self.committed + self.aborted
        return self.aborted / started if started else 0.0

    def as_row(self) -> Dict[str, float]:
        """Flatten to a dict for table rendering."""
        row = {
            "committed": self.committed,
            "aborted": self.aborted,
            "conflicts": self.conflicts,
            "blocks": self.blocks,
            "throughput": round(self.throughput, 4),
            "mean_latency": round(self.mean_latency, 3),
            "conflict_rate": round(self.conflict_rate, 4),
            "abort_rate": round(self.abort_rate, 4),
            "validation_failures": self.validation_failures,
            "deadlocks": self.deadlocks,
        }
        if self.crashes or self.recoveries:
            row.update(
                {
                    "crashes": self.crashes,
                    "recoveries": self.recoveries,
                    "replayed_records": self.replayed_records,
                    "recovery_time": round(self.recovery_time, 4),
                }
            )
        return row

    def merge(self, other: "Metrics") -> "Metrics":
        """Sum counters from ``other`` into this run (durations add too).

        Iterates ``dataclasses.fields`` so a counter added to the class
        later can never be silently dropped from merged results.
        """
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self
