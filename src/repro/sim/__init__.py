"""Discrete-event simulation of concurrent transaction workloads."""

from .des import Simulator
from .waiting import DeadlockDetected, WaitRegistry
from .experiment import ClientParams, compare_protocols, run_experiment
from .metrics import Metrics
from .workload import (
    AccountWorkload,
    DirectoryWorkload,
    FileWorkload,
    QueueWorkload,
    SemiQueueWorkload,
    SetWorkload,
    StackWorkload,
    Step,
    Workload,
)

__all__ = [
    "Simulator",
    "WaitRegistry",
    "DeadlockDetected",
    "Metrics",
    "ClientParams",
    "run_experiment",
    "compare_protocols",
    "Workload",
    "Step",
    "QueueWorkload",
    "SemiQueueWorkload",
    "AccountWorkload",
    "FileWorkload",
    "SetWorkload",
    "DirectoryWorkload",
    "StackWorkload",
]
