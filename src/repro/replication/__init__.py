"""Quorum-consensus replication for abstract data types (paper §7.2, [8])."""

from .quorum import QuorumAssignment, QuorumSpec, QuorumViolation
from .replicated import (
    Replica,
    ReplicatedObject,
    ReplicatedTransactionManager,
    Unavailable,
)

__all__ = [
    "QuorumSpec",
    "QuorumAssignment",
    "QuorumViolation",
    "Replica",
    "ReplicatedObject",
    "ReplicatedTransactionManager",
    "Unavailable",
]
