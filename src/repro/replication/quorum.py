"""Quorum assignments constrained by dependency relations (paper §7.2, [8]).

Herlihy's quorum-consensus replication for abstract data types assigns
each operation an *initial quorum* (replicas consulted to build the view)
and a *final quorum* (replicas that must record the effect).  The paper's
Discussion notes that the correctness constraint is exactly a dependency
condition; in this library's terms:

    For every invocation schema I and every possible result making an
    operation q of schema I, and for every operation schema p with
    (q, p) in the dependency relation:

        initial_quorum(I) + final_quorum(p) > n

so any initial quorum of ``I`` intersects any final quorum of ``p`` —
the view assembled for ``q`` then contains *every* committed operation
``q`` depends on, i.e. it is a dependency-closed view, and Lemma 7
guarantees the chosen result stays legal in the global timestamp order.

Operations that depend on nothing (Credit, Post, Enq, Push, Insert...)
may take an **empty initial quorum**: their results are legal in any
view, so they need not read at all — the typed generalisation of blind
writes, and the source of the availability gains over read/write
quorums.

Quorums here are *size-based* (any k live replicas), so intersection is
by counting; assignments are validated mechanically against the
enumerated dependency relation over an operation universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

from ..core.conflict import Relation
from ..core.operations import Invocation, Operation

__all__ = ["QuorumSpec", "QuorumAssignment", "QuorumViolation"]


@dataclass(frozen=True)
class QuorumSpec:
    """Initial/final quorum sizes for one invocation schema."""

    initial: int
    final: int

    def __post_init__(self):
        if self.initial < 0 or self.final < 1:
            raise ValueError(
                "initial quorum must be >= 0 and final quorum >= 1"
            )


@dataclass(frozen=True)
class QuorumViolation:
    """A dependency pair whose quorums cannot be guaranteed to intersect."""

    dependent_schema: str
    depended_schema: str
    initial: int
    final: int
    replicas: int

    def __str__(self) -> str:
        return (
            f"{self.dependent_schema} depends on {self.depended_schema} but "
            f"initial({self.initial}) + final({self.final}) <= "
            f"n({self.replicas})"
        )


class QuorumAssignment:
    """Per-invocation-schema quorum sizes over ``replicas`` copies.

    ``quorums`` maps invocation names (``"Credit"``, ``"Debit"``, ...) to
    :class:`QuorumSpec`.  Use :meth:`validate` to check an assignment
    against a type's dependency relation, and :meth:`majority` /
    :meth:`read_write` for the classical baselines.
    """

    def __init__(self, replicas: int, quorums: Mapping[str, QuorumSpec]):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        self._quorums: Dict[str, QuorumSpec] = dict(quorums)
        for name, spec in self._quorums.items():
            if spec.initial > replicas or spec.final > replicas:
                raise ValueError(
                    f"{name}: quorum sizes cannot exceed replica count"
                )

    def spec_for(self, invocation: Invocation) -> QuorumSpec:
        """The quorum sizes for an invocation (by operation name)."""
        try:
            return self._quorums[invocation.name]
        except KeyError:
            raise KeyError(
                f"no quorum assignment for operation {invocation.name!r}"
            ) from None

    def names(self) -> List[str]:
        """All assigned invocation names."""
        return sorted(self._quorums)

    # ------------------------------------------------------------------
    # Validation against a dependency relation
    # ------------------------------------------------------------------

    def validate(
        self,
        dependency: Relation,
        universe: Sequence[Operation],
        tracer=None,
        obj: str = None,
    ) -> List[QuorumViolation]:
        """Check the intersection constraint over a finite universe.

        For every pair of operations ``(q, p)`` in the dependency
        relation, the initial quorum of ``q``'s invocation must overlap
        the final quorum of ``p``'s invocation:
        ``initial(q) + final(p) > n``.  Returns all violations (empty
        means valid).  When ``tracer`` (a :class:`repro.obs.TraceBus`) is
        given, each violation is also emitted as a ``quorum.deny`` event.
        """
        violations: List[QuorumViolation] = []
        seen: set = set()
        for q in universe:
            for p in universe:
                if not dependency.related(q, p):
                    continue
                key = (q.name, p.name)
                if key in seen:
                    continue
                seen.add(key)
                iq = self.spec_for(q.invocation).initial
                fp = self.spec_for(p.invocation).final
                if iq + fp <= self.replicas:
                    violation = QuorumViolation(
                        q.name, p.name, iq, fp, self.replicas
                    )
                    violations.append(violation)
                    if tracer is not None:
                        tracer.emit(
                            "quorum.deny",
                            obj=obj,
                            quorum="assignment",
                            dependent=q.name,
                            depended=p.name,
                            initial=iq,
                            final=fp,
                            replicas=self.replicas,
                        )
        return violations

    def is_valid(self, dependency: Relation, universe: Sequence[Operation]) -> bool:
        """True when :meth:`validate` reports no violations."""
        return not self.validate(dependency, universe)

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------

    def available_operations(self, live: int) -> List[str]:
        """Invocation names executable with ``live`` replicas up.

        An operation needs ``max(initial, final)`` live replicas (the
        view read and the effect write both have to reach their quorums).
        """
        return [
            name
            for name, spec in sorted(self._quorums.items())
            if live >= spec.initial and live >= spec.final
        ]

    def tolerated_failures(self, name: str) -> int:
        """How many replica failures the operation survives."""
        spec = self._quorums[name]
        return self.replicas - max(spec.initial, spec.final)

    # ------------------------------------------------------------------
    # Classical baselines
    # ------------------------------------------------------------------

    @classmethod
    def majority(cls, replicas: int, names: Sequence[str]) -> "QuorumAssignment":
        """Majority initial and final quorums for every operation."""
        majority = replicas // 2 + 1
        return cls(
            replicas,
            {name: QuorumSpec(majority, majority) for name in names},
        )

    @classmethod
    def read_write(
        cls,
        replicas: int,
        is_read_name: Callable[[str], bool],
        names: Sequence[str],
        read_quorum: int = 0,
    ) -> "QuorumAssignment":
        """Gifford-style read/write quorums ignoring type semantics.

        Reads use ``(r, r)``-ish quorums with ``r`` defaulting to a
        majority; writes use ``w = n - r + 1`` so ``r + w > n``; every
        non-read is a write and every write must also *read* (to learn
        the current version), so its initial quorum is ``r`` too.
        """
        r = read_quorum or (replicas // 2 + 1)
        w = replicas - r + 1
        quorums = {}
        for name in names:
            if is_read_name(name):
                quorums[name] = QuorumSpec(r, 1)
            else:
                quorums[name] = QuorumSpec(r, w)
        return cls(replicas, quorums)
