"""Replicated hybrid atomic objects (paper §7.2, [8]).

A :class:`ReplicatedObject` keeps its committed state as *event logs* on
``n`` replicas: each log entry is one committed transaction's intentions
list with its commit timestamp.  Executing an operation:

1. reads the logs of an **initial quorum** of live replicas (sized per
   invocation schema) and merges them by timestamp — by the assignment's
   intersection constraint the merged log contains every committed
   operation the new operation could depend on, so it is a
   dependency-closed view and Lemma 7 makes results chosen from it valid
   in the global timestamp order;
2. checks lock conflicts exactly as the single-copy protocol does (the
   lock table is kept logically centralised — replica-local lock tables
   acquired alongside quorums behave identically under our fail-stop
   model and single coordinator);
3. at commit, appends the transaction's ``(timestamp, intentions)`` entry
   to a **final quorum** of live replicas; the *propagation rule* of [8]
   also writes back the merged view, so dependency closure survives
   transitively.

Replicas fail and recover (fail-stop with stable logs).  An operation or
commit that cannot reach its quorum among live replicas raises
:class:`Unavailable` — availability, not safety, is what failures cost,
and the benchmark shows type-specific quorums keep more operations
available than read/write quorums under the same failures.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..adts.base import ADT
from ..core.conflict import Relation
from ..core.errors import (
    LockConflict,
    ProtocolError,
    ReproError,
    TransactionAborted,
    WouldBlock,
)
from ..core.events import AbortEvent, CommitEvent, InvocationEvent, ResponseEvent
from ..core.history import History
from ..core.operations import Invocation, Operation, OperationSequence
from ..core.timestamps import MonotoneTimestampGenerator, TimestampGenerator
from ..runtime.transaction import Status, Transaction
from .quorum import QuorumAssignment

__all__ = ["Unavailable", "Replica", "ReplicatedObject", "ReplicatedTransactionManager"]

#: A committed log entry: (commit timestamp, transaction name, intentions).
LogEntry = Tuple[Any, str, OperationSequence]


class Unavailable(ReproError):
    """Too few live replicas to meet the operation's quorum."""

    def __init__(self, message: str, needed: int = 0, live: int = 0):
        super().__init__(message)
        self.needed = needed
        self.live = live


class Replica:
    """One copy: a stable log of committed entries plus an up/down flag."""

    def __init__(self, name: str):
        self.name = name
        self.alive = True
        #: Committed entries keyed by transaction name (idempotent merge).
        self._log: Dict[str, LogEntry] = {}

    def fail(self) -> None:
        """Fail-stop: the replica stops answering; its log persists."""
        self.alive = False

    def recover(self) -> None:
        """Rejoin with the (possibly stale) stable log."""
        self.alive = True

    def merge(self, entries: Dict[str, LogEntry]) -> None:
        """Union incoming entries into the log (write-back propagation)."""
        self._log.update(entries)

    def entries(self) -> Dict[str, LogEntry]:
        """A copy of the log."""
        return dict(self._log)

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"Replica({self.name}, {state}, {len(self._log)} entries)"


class ReplicatedObject:
    """A hybrid atomic object stored as quorum-replicated logs."""

    def __init__(
        self,
        name: str,
        adt: ADT,
        assignment: QuorumAssignment,
        conflict: Optional[Relation] = None,
    ):
        self.name = name
        self.adt = adt
        self.spec = adt.spec
        self.assignment = assignment
        self.conflict = conflict if conflict is not None else adt.conflict
        #: Optional :class:`repro.obs.TraceBus` (set by the manager).
        self.tracer = None
        self.replicas = [
            Replica(f"{name}/r{i}") for i in range(assignment.replicas)
        ]
        #: Active transactions' intentions (volatile, coordinator-side).
        self._intentions: Dict[str, List[Operation]] = {}
        #: Per-transaction merged view of committed entries (snapshot of
        #: what its quorum reads have shown so far).
        self._views: Dict[str, Dict[str, LogEntry]] = {}
        #: Rotating offset so successive quorums spread across replicas
        #: (any k-of-n choice preserves counted intersection).
        self._rotation = 0

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------

    def live_replicas(self) -> List[Replica]:
        """Replicas currently answering."""
        return [replica for replica in self.replicas if replica.alive]

    def fail_replicas(self, count: int) -> None:
        """Fail the first ``count`` live replicas."""
        for replica in self.live_replicas()[:count]:
            replica.fail()

    def recover_all(self) -> None:
        """Bring every replica back up."""
        for replica in self.replicas:
            replica.recover()

    # ------------------------------------------------------------------
    # Quorum reads/writes
    # ------------------------------------------------------------------

    def _choose(self, size: int, kind: str) -> List[Replica]:
        live = self.live_replicas()
        tracer = self.tracer
        if len(live) < size:
            if tracer is not None:
                tracer.emit(
                    "quorum.deny",
                    obj=self.name,
                    quorum=kind,
                    needed=size,
                    live=len(live),
                    replicas=self.assignment.replicas,
                )
            raise Unavailable(
                f"{self.name}: {kind} quorum needs {size} replicas,"
                f" only {len(live)} live",
                needed=size,
                live=len(live),
            )
        start = self._rotation % max(1, len(live))
        self._rotation += 1
        chosen = [live[(start + i) % len(live)] for i in range(size)]
        if tracer is not None:
            tracer.emit(
                "quorum.assemble",
                obj=self.name,
                quorum=kind,
                size=size,
                live=len(live),
                members=sorted(replica.name for replica in chosen),
            )
        return chosen

    def _read_quorum(self, size: int) -> Dict[str, LogEntry]:
        merged: Dict[str, LogEntry] = {}
        tracer = self.tracer
        for replica in self._choose(size, "initial"):
            entries = replica.entries()
            if tracer is not None:
                tracer.emit(
                    "replica.read",
                    obj=self.name,
                    replica=replica.name,
                    entries=len(entries),
                )
            merged.update(entries)
        return merged

    def _write_quorum(self, size: int, entries: Dict[str, LogEntry]) -> None:
        tracer = self.tracer
        for replica in self._choose(size, "final"):
            replica.merge(entries)
            if tracer is not None:
                tracer.emit(
                    "replica.write",
                    obj=self.name,
                    replica=replica.name,
                    entries=len(entries),
                )

    @staticmethod
    def _ordered(entries: Dict[str, LogEntry]) -> OperationSequence:
        sequence: List[Operation] = []
        for timestamp, _txn, ops in sorted(entries.values(), key=lambda e: e[0]):
            sequence.extend(ops)
        return tuple(sequence)

    # ------------------------------------------------------------------
    # Protocol steps (driven by the manager)
    # ------------------------------------------------------------------

    def execute(self, transaction: str, invocation: Invocation) -> Any:
        """One locked operation: quorum read, choose result, check locks."""
        spec_sizes = self.assignment.spec_for(invocation)
        fresh = self._read_quorum(spec_sizes.initial)
        view_entries = self._views.setdefault(transaction, {})
        view_entries.update(fresh)
        mine = self._intentions.setdefault(transaction, [])
        view = self._ordered(view_entries) + tuple(mine)
        states = self.spec.run(view)
        results = self.spec.results_for(states, invocation)
        if not results:
            raise WouldBlock(f"{invocation} has no legal outcome in the view")
        conflict: Optional[LockConflict] = None
        for result in results:
            operation = Operation(invocation, result)
            try:
                self._check_conflicts(transaction, operation)
            except LockConflict as exc:
                conflict = exc
                continue
            mine.append(operation)
            return result
        assert conflict is not None
        raise conflict

    def _check_conflicts(self, transaction: str, operation: Operation) -> None:
        for other, ops in self._intentions.items():
            if other == transaction:
                continue
            for held in ops:
                if self.conflict.related(held, operation) or self.conflict.related(
                    operation, held
                ):
                    tracer = self.tracer
                    if tracer is not None:
                        tracer.emit(
                            "lock.conflict",
                            transaction=transaction,
                            obj=self.name,
                            operation=str(operation),
                            holder=other,
                            held=str(held),
                            relation=self.conflict.name,
                        )
                    raise LockConflict(
                        f"{operation} conflicts with {held} held by {other}",
                        holder=other,
                        operation=held,
                    )

    def required_final_quorum(self, transaction: str) -> int:
        """The largest final quorum among the transaction's operations."""
        ops = self._intentions.get(transaction, [])
        if not ops:
            return 0
        return max(
            self.assignment.spec_for(op.invocation).final for op in ops
        )

    def can_commit(self, transaction: str) -> bool:
        """Would the commit write reach its final quorum right now?"""
        return len(self.live_replicas()) >= self.required_final_quorum(
            transaction
        )

    def apply_commit(self, transaction: str, timestamp: Any) -> None:
        """Write the committed entry (plus the merged view — the
        propagation rule) to the final quorum and release locks."""
        ops = tuple(self._intentions.pop(transaction, []))
        view_entries = self._views.pop(transaction, {})
        size = (
            max(self.assignment.spec_for(op.invocation).final for op in ops)
            if ops
            else 1
        )
        entries = dict(view_entries)
        entries[transaction] = (timestamp, transaction, ops)
        self._write_quorum(size, entries)

    def discard(self, transaction: str) -> None:
        """Abort: drop volatile intentions and the cached view."""
        self._intentions.pop(transaction, None)
        self._views.pop(transaction, None)

    def max_committed_timestamp(self, transaction: str) -> Optional[Any]:
        """Largest commit timestamp visible in the transaction's view."""
        entries = self._views.get(transaction)
        if not entries:
            return None
        return max(entry[0] for entry in entries.values())

    def snapshot(self) -> Any:
        """Committed-state snapshot from a full read of live replicas."""
        merged: Dict[str, LogEntry] = {}
        for replica in self.live_replicas():
            merged.update(replica.entries())
        states = self.spec.run(self._ordered(merged))
        return sorted(states, key=repr)[0]


class ReplicatedTransactionManager:
    """Transactions over quorum-replicated objects.

    Same surface as the other managers.  Commit is atomic across objects:
    every touched object's final-quorum availability is checked *before*
    any write (the prepare phase of the assumed commitment protocol);
    if any object is short of replicas the commit raises
    :class:`Unavailable` and the transaction stays active so the caller
    can retry after recovery or abort.
    """

    def __init__(
        self,
        generator: Optional[TimestampGenerator] = None,
        record_history: bool = False,
        tracer: Optional[Any] = None,
    ):
        self._generator = generator or MonotoneTimestampGenerator()
        self._objects: Dict[str, ReplicatedObject] = {}
        self._transactions: Dict[str, Transaction] = {}
        self._names = itertools.count(1)
        self._record = record_history
        self._events: List[Any] = []
        #: Optional :class:`repro.obs.TraceBus`, propagated to objects.
        self.tracer = tracer

    def create_object(
        self,
        name: str,
        adt: ADT,
        assignment: QuorumAssignment,
        conflict: Optional[Relation] = None,
        validate: bool = True,
        universe: Optional[Sequence[Operation]] = None,
    ) -> ReplicatedObject:
        """Create a replicated object; validates the assignment by default
        against the ADT's dependency relation over its default universe."""
        if name in self._objects:
            raise ValueError(f"object {name!r} already exists")
        if validate:
            ops = list(universe) if universe is not None else adt.universe()
            violations = assignment.validate(
                adt.dependency, ops, tracer=self.tracer, obj=name
            )
            if violations:
                raise ValueError(
                    "quorum assignment violates the dependency constraint: "
                    + "; ".join(str(v) for v in violations)
                )
        managed = ReplicatedObject(name, adt, assignment, conflict)
        managed.tracer = self.tracer
        self._objects[name] = managed
        if self.tracer is not None:
            self.tracer.emit(
                "obj.create",
                obj=name,
                adt=adt.name,
                protocol="quorum",
                relation=managed.conflict.name,
                initial=adt.spec.initial_states(),
                replicas=assignment.replicas,
            )
        return managed

    def object(self, name: str) -> ReplicatedObject:
        """Look up an object by name."""
        return self._objects[name]

    @property
    def objects(self) -> Dict[str, ReplicatedObject]:
        """All objects by name."""
        return dict(self._objects)

    # -- lifecycle --------------------------------------------------------

    def begin(self, name: Optional[str] = None) -> Transaction:
        """Start a new transaction."""
        if name is None:
            name = f"T{next(self._names)}"
        if name in self._transactions:
            raise ValueError(f"transaction {name!r} already exists")
        transaction = Transaction(name)
        self._transactions[name] = transaction
        if self.tracer is not None:
            self.tracer.emit("txn.begin", transaction=name, read_only=False)
        return transaction

    def invoke(
        self, transaction: Transaction, obj: str, operation: str, *args: Any
    ) -> Any:
        """Execute one operation through the object's quorums."""
        self._require_active(transaction)
        invocation = Invocation(operation, args)
        managed = self._objects[obj]
        result = managed.execute(transaction.name, invocation)
        tracer = self.tracer
        if tracer is not None:
            # Like the LOCK machine, record invoke+respond only on
            # acceptance: a refused attempt leaves the object unchanged.
            tracer.emit(
                "txn.invoke",
                transaction=transaction.name,
                obj=obj,
                operation=operation,
                args=invocation.args,
            )
            tracer.emit(
                "txn.respond",
                transaction=transaction.name,
                obj=obj,
                result=result,
            )
        transaction.touched.add(obj)
        transaction.operations += 1
        observed = managed.max_committed_timestamp(transaction.name)
        if observed is not None:
            self._generator.observe(transaction.name, observed)
        if self._record:
            self._events.append(InvocationEvent(transaction.name, obj, invocation))
            self._events.append(ResponseEvent(transaction.name, obj, result))
        return result

    def commit(self, transaction: Transaction) -> Any:
        """Two-phase commit: check quorums everywhere, then write."""
        self._require_active(transaction)
        for obj in sorted(transaction.touched):  # prepare
            managed = self._objects[obj]
            if not managed.can_commit(transaction.name):
                raise Unavailable(
                    f"cannot commit {transaction.name}: {obj} lacks its"
                    " final quorum",
                    needed=managed.required_final_quorum(transaction.name),
                    live=len(managed.live_replicas()),
                )
        timestamp = self._generator.commit_timestamp(transaction.name)
        if self.tracer is not None:
            # Decision time: the commit event precedes the quorum writes
            # it triggers, so downstream events trail the commit.
            self.tracer.emit(
                "txn.commit",
                transaction=transaction.name,
                timestamp=timestamp,
                objects=sorted(transaction.touched),
            )
        for obj in sorted(transaction.touched):  # commit
            self._objects[obj].apply_commit(transaction.name, timestamp)
            if self._record:
                self._events.append(CommitEvent(transaction.name, obj, timestamp))
        transaction.status = Status.COMMITTED
        transaction.timestamp = timestamp
        self._generator.forget(transaction.name)
        return timestamp

    def abort(self, transaction: Transaction) -> None:
        """Abort: drop volatile state everywhere (always available)."""
        self._require_active(transaction)
        for obj in sorted(transaction.touched):
            self._objects[obj].discard(transaction.name)
            if self._record:
                self._events.append(AbortEvent(transaction.name, obj))
        transaction.status = Status.ABORTED
        self._generator.forget(transaction.name)
        if self.tracer is not None:
            self.tracer.emit(
                "txn.abort",
                transaction=transaction.name,
                objects=sorted(transaction.touched),
            )

    def _require_active(self, transaction: Transaction) -> None:
        if self._transactions.get(transaction.name) is not transaction:
            raise ProtocolError(f"unknown transaction {transaction.name!r}")
        if not transaction.is_active:
            raise TransactionAborted(
                f"{transaction.name} is {transaction.status.value}"
            )

    # -- convenience ------------------------------------------------------

    def run_transaction(
        self, body, max_attempts: int = 25, name: Optional[str] = None
    ) -> Any:
        """Run with retry on lock conflicts / blocked partial operations."""
        from ..runtime.manager import TransactionContext

        error: Optional[Exception] = None
        for attempt in range(max_attempts):
            suffix = f"#{attempt}" if attempt else ""
            transaction = self.begin(None if name is None else name + suffix)
            context = TransactionContext(self, transaction)
            try:
                value = body(context)
                self.commit(transaction)
                return value
            except (LockConflict, WouldBlock) as exc:
                if transaction.is_active:
                    self.abort(transaction)
                error = exc
                continue
            except BaseException:
                if transaction.is_active:
                    self.abort(transaction)
                raise
        assert error is not None
        raise error

    # -- verification -----------------------------------------------------

    def history(self) -> History:
        """The recorded global history (requires ``record_history=True``)."""
        if not self._record:
            raise ProtocolError("manager was created with record_history=False")
        return History(self._events, validate=False)

    def specs(self) -> Dict[str, Any]:
        """Object-name → serial-spec map for the atomicity checkers."""
        return {name: managed.spec for name, managed in self._objects.items()}
