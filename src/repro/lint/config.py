"""Engine-level rule scoping: which paths each path-scoped rule covers.

REP104 (determinism) and REP106 (no blocking calls) only make sense in
the layers that run inside the *simulated* event loop — a wall-clock
read or a ``time.sleep`` there silently breaks "same seed, same run".
The serving tier (PR 6) complicates that picture: ``repro.server`` runs
inside a *real* asyncio event loop, so the no-blocking discipline still
applies to its pure modules (framing, sessions), while its edge modules
exist precisely to do real socket I/O and wall-clock latency timing.

Rather than scattering ``# repro: noqa`` across every line of the wire
tier, the scope is *engine configuration*: each rule declares the path
fragments it covers (``include``) and the explicitly allowlisted
real-I/O modules inside that scope (``allowlist``).  An allowlist entry
is a reviewable, documented exemption — ``--statistics`` style audits
and the fixture tests in ``tests/lint/test_allowlist.py`` pin its exact
extent, and a blanket "disable the rule for the package" is impossible
by construction (the allowlist names modules, not directories of
arbitrary future code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["RuleScope", "RULE_SCOPES", "in_scope", "allowlisted"]


@dataclass(frozen=True)
class RuleScope:
    """Path-fragment scope for one rule.

    ``include`` fragments select the files the rule examines;
    ``allowlist`` fragments carve out the sanctioned real-I/O modules
    within that scope.  Fragments match anywhere in the ``/``-normalised
    path, so the same configuration covers installed and in-repo trees.
    """

    include: Tuple[str, ...]
    allowlist: Tuple[str, ...] = ()

    def covers(self, path: str) -> bool:
        """True when the rule should check ``path``."""
        normalized = path.replace("\\", "/")
        if not any(fragment in normalized for fragment in self.include):
            return False
        return not any(fragment in normalized for fragment in self.allowlist)

    def allows(self, path: str) -> bool:
        """True when ``path`` is covered by an allowlist entry."""
        normalized = path.replace("\\", "/")
        return any(fragment in normalized for fragment in self.allowlist)


#: The real-I/O edge of the serving tier.  ``protocol.py`` and
#: ``session.py`` are deliberately *absent*: framing and session
#: bookkeeping are pure and stay under the full discipline.
_SERVER_REAL_IO = (
    "/server/server.py",
    "/server/client.py",
    "/server/bench.py",
    "/server/top.py",
    "/server/procpool.py",
    "/server/shardbench.py",
)

RULE_SCOPES: Dict[str, RuleScope] = {
    # Determinism: simulation subsystems replay bit-for-bit from a seed.
    # The serving tier is in scope (its pure modules must not fold wall
    # clocks into protocol state) but its socket/benchmark modules are
    # allowlisted — measuring real latency *is* their job.
    "REP104": RuleScope(
        include=(
            "/core/",
            "/distributed/",
            "/recovery/",
            "/sim/",
            "/replication/",
            "/server/",
        ),
        allowlist=_SERVER_REAL_IO,
    ),
    # No blocking calls: event-loop layers must never suspend the
    # thread.  Real sockets live only in the allowlisted edge modules;
    # everything else under /server/ (framing, sessions) is checked.
    "REP106": RuleScope(
        include=(
            "/core/",
            "/distributed/",
            "/sim/",
            "/replication/",
            "/server/",
        ),
        allowlist=_SERVER_REAL_IO,
    ),
    # Table/spec agreement: the semantic re-derivation applies to the
    # table-declaring modules in adts/.  The generated bitset artifacts
    # under _compiled/ carry no COMPILED_TABLES hook, so the rule skips
    # them without an allowlist carve-out (their integrity is REP108's
    # job).
    "REP107": RuleScope(
        include=("/adts/",),
    ),
    # Generated-table integrity: only the compiled artifacts carry the
    # digest sentinel this rule pins.
    "REP108": RuleScope(
        include=("/adts/_compiled/",),
    ),
}


def in_scope(rule_id: str, path: str) -> bool:
    """Should ``rule_id`` examine ``path``?  Unscoped rules see all."""
    scope = RULE_SCOPES.get(rule_id)
    return True if scope is None else scope.covers(path)


def allowlisted(rule_id: str, path: str) -> bool:
    """Is ``path`` carved out of ``rule_id``'s scope by configuration?"""
    scope = RULE_SCOPES.get(rule_id)
    return False if scope is None else scope.allows(path)
