"""REP107/REP108 — semantic verification of the conflict tables.

The repo's first *semantic* lint rules: instead of proving a syntactic
discipline over the AST, they evaluate the linted module and re-run the
paper's derivations against it (the :mod:`repro.core.compile` pipeline).

* **REP107** (``table-spec-agreement``) — every relation a type declares
  in its module-level ``COMPILED_TABLES`` hook is re-verified against the
  serial specification over the declared finite universe: a conflict
  table that is asymmetric or fails Definition 3 voids the Theorem 11/16
  hybrid-atomicity guarantee (error); a failure-to-commute table that
  disagrees with the derived relation is a mis-transcription (error); a
  sound conflict table carrying a removable pair forfeits Section 7
  concurrency (warning — silence with ``# repro: nonminimal`` on the
  declaration once the extra conflict is deliberate).  This check
  supersedes the hand audits that previously justified the
  ``# repro: symmetric`` annotations.
* **REP108** (``generated-table-integrity``) — a generated module under
  ``adts/_compiled/`` (identified by its sentinel line) must reproduce
  its embedded content digest: a hand edit to the universe or any mask
  table breaks the digest and is reported.  Staleness against a *fresh*
  derivation is the (more expensive) job of ``repro compile --check``.

Both rules evaluate source from the file under lint — never the
installed module — so mutated copies of the tree (the lint mutation
suite, review checkouts) are judged on their own content.  Verdicts are
cached per source digest: re-linting an unchanged file is free.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from ...core.compile import (
    GENERATED_MARKER,
    default_universe,
    depths_for,
    module_digest,
    reference_relation,
    verify_commutativity_table,
    verify_conflict_table,
)
from ..config import in_scope
from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["TableSpecAgreement", "GeneratedTableIntegrity"]

#: severity-tagged verdicts per source digest: (line, col, message, severity).
_Verdict = Tuple[int, int, str, str]
_VERDICT_CACHE: Dict[str, List[_Verdict]] = {}


def _source_key(rule_id: str, source: str) -> str:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return f"{rule_id}:{digest}"


def _assignment_line(tree: ast.Module, name: str) -> Optional[int]:
    """Line of the module-level assignment binding ``name``."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            return node.lineno
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            return node.lineno
    return None


def _exec_module(context: FileContext, module_name: str) -> dict:
    """Execute the linted file's source as ``module_name``.

    Relative imports resolve against the installed ``repro`` package, so
    a mutated copy of one adts module is evaluated with the real core
    underneath it — exactly the judgement ``repro compile`` would make.
    """
    namespace: dict = {
        "__name__": module_name,
        "__package__": module_name.rsplit(".", 1)[0],
        "__file__": context.path,
    }
    code = compile(context.source, context.path, "exec")
    exec(code, namespace)  # noqa: S102 — the linted tree is our own source
    return namespace


@register
class TableSpecAgreement(Rule):
    id = "REP107"
    name = "table-spec-agreement"
    rationale = (
        "Theorems 11/16 and 28: every declared conflict table must be a "
        "symmetric dependency relation and every commutativity table must "
        "equal the derived failure-to-commute relation — re-derived from "
        "the serial spec, not taken on faith"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        if not in_scope(self.id, context.path):
            return
        hook = _assignment_line(context.tree, "COMPILED_TABLES")
        if hook is None:
            return  # not a table-declaring module
        key = _source_key(self.id, context.source)
        verdicts = _VERDICT_CACHE.get(key)
        if verdicts is None:
            verdicts = list(self._verify(context, hook))
            _VERDICT_CACHE[key] = verdicts
        for line, col, message, severity in verdicts:
            yield Finding(
                rule=self.id,
                path=context.path,
                line=line,
                col=col,
                message=message,
                severity=severity,
            )

    def _verify(self, context: FileContext, hook_line: int) -> Iterable[_Verdict]:
        from ...adts import base as adts_base

        stem = context.path.replace("\\", "/").rsplit("/", 1)[-1][: -len(".py")]
        snapshot = dict(adts_base._REGISTRY)
        try:
            # The exec'd module calls register(); capture the factories it
            # added (or replaced) before restoring the real registry.
            namespace = _exec_module(context, f"repro.adts.{stem}")
            factories = [
                factory
                for name, factory in adts_base._REGISTRY.items()
                if snapshot.get(name) is not factory
            ]
        except Exception as exc:  # noqa: BLE001 — any failure is a finding
            yield (
                hook_line, 0,
                f"cannot evaluate module to verify its tables: {exc!r}",
                "error",
            )
            return
        finally:
            adts_base._REGISTRY.clear()
            adts_base._REGISTRY.update(snapshot)

        tables = namespace.get("COMPILED_TABLES")
        if not isinstance(tables, dict) or not tables:
            yield (
                hook_line, 0,
                "COMPILED_TABLES must be a non-empty dict of "
                "{table name: relation}",
                "error",
            )
            return
        if not factories:
            yield (
                hook_line, 0,
                "module declares COMPILED_TABLES but registers no ADT "
                "factory — the tables cannot be verified against a spec",
                "error",
            )
            return
        try:
            # Each adts module registers exactly one type; judge its tables
            # with the bundle the *linted* source builds.
            bundle = factories[0]()
        except Exception as exc:  # noqa: BLE001
            yield (
                hook_line, 0,
                f"cannot instantiate the registered ADT bundle: {exc!r}",
                "error",
            )
            return

        universe = default_universe(bundle)
        max_h1, _max_h2, mc_depth = depths_for(bundle.name)
        for table_key in sorted(tables):
            relation = reference_relation(tables[table_key])
            line, check_minimal = self._anchor(context, namespace, relation, hook_line)
            label = f"{bundle.name}.{table_key}"
            if "COMMUTATIVITY" in table_key:
                issues = verify_commutativity_table(
                    label, relation, bundle.spec, universe, mc_depth=mc_depth
                )
            else:
                issues = verify_conflict_table(
                    label,
                    relation,
                    bundle.spec,
                    universe,
                    max_h=max_h1,
                    max_k=mc_depth,
                    check_minimal=check_minimal,
                )
            for issue in issues:
                yield (line, 0, f"{issue.table}: {issue.message}", issue.severity)

    @staticmethod
    def _anchor(context, namespace, relation, hook_line):
        """Declaration line for a table relation, and whether to check
        minimality (suppressed by ``# repro: nonminimal`` on that line)."""
        for name, value in namespace.items():
            if value is relation and not name.startswith("__"):
                line = _assignment_line(context.tree, name)
                if line is not None:
                    return line, not context.has_marker("nonminimal", line)
        return hook_line, not context.has_marker("nonminimal", hook_line)


@register
class GeneratedTableIntegrity(Rule):
    id = "REP108"
    name = "generated-table-integrity"
    rationale = (
        "compiled bitset tables are derived artifacts: a hand edit "
        "silently de-couples the locked conflicts from the verified "
        "relation, so the embedded content digest must round-trip"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        if not in_scope(self.id, context.path):
            return
        if GENERATED_MARKER not in context.source:
            return  # the loader shim, or a not-yet-generated file
        key = _source_key(self.id, context.source)
        verdicts = _VERDICT_CACHE.get(key)
        if verdicts is None:
            verdicts = list(self._verify(context))
            _VERDICT_CACHE[key] = verdicts
        for line, col, message, severity in verdicts:
            yield Finding(
                rule=self.id,
                path=context.path,
                line=line,
                col=col,
                message=message,
                severity=severity,
            )

    def _verify(self, context: FileContext) -> Iterable[_Verdict]:
        stem = context.path.replace("\\", "/").rsplit("/", 1)[-1][: -len(".py")]
        try:
            namespace = _exec_module(context, f"repro.adts._compiled.{stem}")
        except Exception as exc:  # noqa: BLE001
            yield (1, 0, f"cannot evaluate generated module: {exc!r}", "error")
            return
        digest_line = _assignment_line(context.tree, "DIGEST") or 1
        declared = namespace.get("DIGEST")
        if not isinstance(declared, str):
            yield (
                digest_line, 0,
                "generated module carries no DIGEST constant — regenerate "
                "with `python -m repro compile`",
                "error",
            )
            return
        universe = namespace.get("UNIVERSE")
        if isinstance(universe, tuple):
            for name, value in sorted(namespace.items()):
                if name.endswith("_MASKS") and isinstance(value, tuple):
                    if len(value) != len(universe):
                        yield (
                            _assignment_line(context.tree, name) or digest_line,
                            0,
                            f"{name} has {len(value)} row(s) for a "
                            f"{len(universe)}-operation universe",
                            "error",
                        )
        recomputed = module_digest(namespace)
        if recomputed is None:
            yield (
                1, 0,
                "generated module lost its table shape (ADT_NAME / "
                "UNIVERSE / *_MASKS) — regenerate with "
                "`python -m repro compile`",
                "error",
            )
            return
        if recomputed != declared:
            yield (
                digest_line, 0,
                "content digest mismatch: the universe or a mask table "
                "was edited by hand — regenerate with "
                "`python -m repro compile` (REP108 pins generated tables "
                "to their derivation)",
                "error",
            )
