"""REP105 — exception safety around protocol resources.

Section 5.1's lock discipline assumes a refused or failed operation
leaves the machine unchanged, and the WAL protocol (PR 1) assumes an
acknowledged append is durable.  Both collapse when exceptions are
mishandled: a bare ``except:`` that swallows a :class:`ReproError`
turns a refused lock into a phantom acceptance; an acquire without a
paired release leaks a lock; an ``open()`` outside ``with``/``finally``
loses buffered WAL records on the error path.

Checks:

* no bare ``except:`` anywhere;
* no silent swallowing — an ``except`` catching ``Exception``,
  ``BaseException``, or any ``ReproError`` subclass whose body is only
  ``pass``/``...`` (no re-raise, no handling);
* every ``.acquire()`` statement inside a function must be paired with
  a ``.release()`` in a ``finally`` block (or appear in a ``with``);
* ``open(...)`` must be used as a context manager (``with open(...)``),
  or the handle must be closed in a ``finally`` — objects that own a
  handle across calls annotate the open with
  ``# repro: noqa[REP105]`` and provide ``close``/``__exit__``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["ExceptionSafety"]

#: Exception names whose silent swallowing is flagged.  The ReproError
#: family are the protocol's refusal signals — losing one corrupts the
#: run's meaning, not just its logging.
_SWALLOW_SENSITIVE = {
    "Exception",
    "BaseException",
    "ReproError",
    "ProtocolError",
    "LockConflict",
    "WouldBlock",
    "IllegalOperation",
    "DeadlockError",
    "RecoveryError",
    "WalCorruption",
    "ValidationFailed",
    "QuorumError",
}


def _exception_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


def _is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _calls_named(nodes: Iterable[ast.stmt], attr: str) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == attr
            ):
                return True
    return False


@register
class ExceptionSafety(Rule):
    id = "REP105"
    name = "exception-safety"
    rationale = (
        "Section 5.1: a refused operation must leave the machine "
        "unchanged, and WAL appends must be durable on every path — "
        "swallowed refusals and leaked handles break both"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(context, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_acquire_release(context, node)
            elif isinstance(node, ast.Call):
                yield from self._check_open(context, node)

    # -- handlers ------------------------------------------------------

    def _check_handler(
        self, context: FileContext, handler: ast.ExceptHandler
    ) -> Iterable[Finding]:
        names = _exception_names(handler)
        if handler.type is None:
            yield self.finding(
                context,
                handler,
                "bare `except:` catches everything including protocol "
                "refusals; name the exceptions this code can actually handle",
            )
            return
        if _is_silent(handler.body) and any(
            name in _SWALLOW_SENSITIVE for name in names
        ):
            caught = ", ".join(names)
            yield self.finding(
                context,
                handler,
                f"`except {caught}` silently swallows protocol errors; "
                "handle, log, or re-raise them",
            )

    # -- acquire/release pairing ---------------------------------------

    def _check_acquire_release(
        self, context: FileContext, func: ast.FunctionDef
    ) -> Iterable[Finding]:
        protected: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Try) and node.finalbody:
                if _calls_named(node.finalbody, "release"):
                    for inner in ast.walk(node):
                        protected.add(id(inner))
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for inner in ast.walk(node):
                    protected.add(id(inner))
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and id(node) not in protected
            ):
                yield self.finding(
                    context,
                    node,
                    ".acquire() without a paired .release() in a finally "
                    "block; use try/finally or a context manager",
                )

    # -- open() discipline ---------------------------------------------

    def _check_open(self, context: FileContext, node: ast.Call) -> Iterable[Finding]:
        if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
            return
        if self._inside_with_item(context.tree, node):
            return
        if self._closed_in_finally(context.tree, node):
            return
        yield self.finding(
            context,
            node,
            "open() outside a `with` block and without close() in a "
            "finally; a raised exception leaks the handle (and any "
            "buffered WAL records)",
        )

    @staticmethod
    def _inside_with_item(tree: ast.AST, call: ast.Call) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for inner in ast.walk(item.context_expr):
                        if inner is call:
                            return True
        return False

    @staticmethod
    def _closed_in_finally(tree: ast.AST, call: ast.Call) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Try) and node.finalbody:
                if not _calls_named(node.finalbody, "close"):
                    continue
                for inner in ast.walk(node):
                    if inner is call:
                        return True
        return False
