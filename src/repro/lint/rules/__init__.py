"""Rule modules — importing this package registers every rule."""

from __future__ import annotations

from . import (  # noqa: F401  — imported for their registration side effect
    blocking,
    determinism,
    encapsulation,
    exceptions,
    symmetry,
    tables,
    trace_events,
)

__all__ = [
    "blocking",
    "determinism",
    "encapsulation",
    "exceptions",
    "symmetry",
    "tables",
    "trace_events",
]
