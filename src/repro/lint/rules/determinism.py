"""REP104 — determinism in simulation paths.

Crash-seed reproducibility (PR 1) and trace replay (PR 2/3) rest on the
same precondition as the paper's Section 6 compaction argument: clocks
are logical and monotone, and every random choice flows from an injected
seed.  One naked ``random.random()`` in a crash plan, or one
``time.time()`` folded into a metric, and "same seed, same run" quietly
stops being true — the checker can no longer replay what the simulator
did.

Inside the scoped subsystems (see ``RULE_SCOPES`` in
:mod:`repro.lint.config`: ``core/``, ``distributed/``, ``recovery/``,
``sim/``, ``replication/``, and the serving tier's pure modules — its
real-I/O socket/benchmark modules are allowlisted by engine
configuration there) this rule forbids:

* module-level RNG calls (``random.random()``, ``random.choice`` … —
  anything on the shared global generator) and unseeded
  ``random.Random()``;
* wall-clock reads: ``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``time.process_time``, ``datetime.now`` /
  ``utcnow`` / ``today``;
* ambient entropy: ``uuid.uuid1``/``uuid4``, ``os.urandom``,
  ``secrets.*``.

Seeded ``random.Random(seed)`` instances and the logical clocks in
``core/timestamps.py`` are the sanctioned alternatives.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..config import in_scope
from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["Determinism"]

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_ENTROPY = {
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("os", "urandom"),
}


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@register
class Determinism(Rule):
    id = "REP104"
    name = "determinism"
    rationale = (
        "Section 6 compaction and crash-seed reproducibility require "
        "deterministic, monotone clocks and seeded randomness only"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        if not in_scope(self.id, context.path):
            return
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = _dotted(func.value)
            if base is None:
                continue
            root = base.split(".")[-1]
            attr = func.attr
            if base == "random" or base.endswith(".random") and root == "random":
                # Calls on the *module*: random.random(), random.choice()…
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            context,
                            node,
                            "unseeded random.Random() in a simulation path; "
                            "pass an explicit seed so runs replay bit for bit",
                        )
                    continue
                if attr in {"seed", "getstate", "setstate"}:
                    continue
                yield self.finding(
                    context,
                    node,
                    f"random.{attr}() uses the shared global generator; "
                    "inject a seeded random.Random instead",
                )
                continue
            if (root, attr) in _WALL_CLOCK:
                yield self.finding(
                    context,
                    node,
                    f"wall-clock {base}.{attr}() in a simulation path; use "
                    "the simulator clock or an injected logical clock "
                    "(core/timestamps.py)",
                )
                continue
            if (root, attr) in _ENTROPY or base == "secrets":
                yield self.finding(
                    context,
                    node,
                    f"ambient entropy {base}.{attr}() in a simulation path; "
                    "derive values from the run seed",
                )
