"""REP103 — committed-state encapsulation.

The LOCK machine's four state components (Section 5.1: ``pending``,
``intentions``, ``committed``, ``aborted``) define the protocol; hybrid
atomicity is proved about *their* evolution under the machine's own
transitions.  Any code that aliases or mutates them from outside —
a snapshot helper returning the live intentions dict, a fault injector
poking ``site._machines`` — can violate the theorems without tripping a
single runtime check.

Two checks:

* **no aliasing returns** — a public method or property must not
  ``return self._attr`` when ``_attr`` was initialised to a mutable
  container (dict/list/set/deque/Counter/defaultdict); return a copy or
  an immutable view instead;
* **no foreign access to protocol state** — outside the module that
  owns the attribute (the module whose class assigns ``self._attr`` in
  ``__init__``), reading or writing the monitored protocol-state
  attributes of *another* object is flagged.  Sanctioned call sites are
  the owning modules themselves (``core/lock_machine.py``,
  ``core/compaction.py``, …); everyone else goes through the public
  accessors.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["StateEncapsulation"]

#: Protocol-state attributes whose foreign access is never OK: the LOCK
#: machine components (Section 5.1), the compaction bookkeeping
#: (Section 6), and the per-subsystem mirrors of the same idea.
_MONITORED_ATTRS = {
    "_pending",
    "_intentions",
    "_committed",
    "_aborted",
    "_bounds",
    "_version",
    "_pins",
    "_machines",
    "_prepared",
    "_tombstones",
    "_touched",
    "_waiting_for",
    "_waiters",
}

#: Constructor / literal shapes that create mutable containers.
_MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
    "bytearray",
}

#: Annotation heads naming mutable container types.
_MUTABLE_ANNOTATIONS = {
    "dict",
    "Dict",
    "list",
    "List",
    "set",
    "Set",
    "MutableMapping",
    "MutableSequence",
    "MutableSet",
    "DefaultDict",
    "Counter",
    "Deque",
    "deque",
}


def _annotation_head(node: Optional[ast.expr]) -> Optional[str]:
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _mutable_private_attrs(cls: ast.ClassDef) -> Set[str]:
    """Private attributes a class initialises to mutable containers."""
    attrs: Set[str] = set()
    for method in cls.body:
        if not (isinstance(method, ast.FunctionDef) and method.name == "__init__"):
            continue
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
                and not target.attr.startswith("__")
            ):
                continue
            mutable = False
            if value is not None and _is_mutable_value(value):
                mutable = True
            head = _annotation_head(annotation)
            if head in _MUTABLE_ANNOTATIONS:
                mutable = True
            # Immutable shapes override: tuple()/frozenset() values.
            if isinstance(value, ast.Call):
                func = value.func
                name = func.id if isinstance(func, ast.Name) else None
                if name in {"tuple", "frozenset"}:
                    mutable = False
            if head in {"Tuple", "tuple", "FrozenSet", "frozenset"}:
                mutable = False
            if mutable:
                attrs.add(target.attr)
    return attrs


@register
class StateEncapsulation(Rule):
    id = "REP103"
    name = "state-encapsulation"
    rationale = (
        "Section 5.1: hybrid atomicity is proved about the machine's own "
        "transitions; aliased or externally mutated protocol state "
        "invalidates the proof without failing any runtime check"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        owned: Set[str] = set()
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef):
                mutable = _mutable_private_attrs(node)
                owned |= {a for a in _MONITORED_ATTRS if self._assigns(node, a)}
                yield from self._check_aliasing_returns(context, node, mutable)
        yield from self._check_foreign_access(context, owned)

    @staticmethod
    def _assigns(cls: ast.ClassDef, attr: str) -> bool:
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Store)
            ):
                return True
        return False

    # -- aliasing returns ----------------------------------------------

    def _check_aliasing_returns(
        self, context: FileContext, cls: ast.ClassDef, mutable: Set[str]
    ) -> Iterable[Finding]:
        if not mutable:
            return
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name.startswith("_") and not self._is_property(method):
                continue  # private helpers may share internals deliberately
            for node in ast.walk(method):
                if not (isinstance(node, ast.Return) and node.value is not None):
                    continue
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and value.attr in mutable
                ):
                    yield self.finding(
                        context,
                        node,
                        f"{cls.name}.{method.name} returns live internal "
                        f"state self.{value.attr}; return a copy "
                        "(dict(...), list(...), tuple(...)) or an immutable "
                        "view",
                    )

    @staticmethod
    def _is_property(method: ast.FunctionDef) -> bool:
        for decorator in method.decorator_list:
            name = (
                decorator.id
                if isinstance(decorator, ast.Name)
                else getattr(decorator, "attr", None)
            )
            if name == "property":
                return True
        return False

    # -- foreign access to protocol state ------------------------------

    def _check_foreign_access(
        self, context: FileContext, owned: Set[str]
    ) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _MONITORED_ATTRS or node.attr in owned:
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in {"self", "cls"}:
                continue
            access = "mutates" if isinstance(
                node.ctx, (ast.Store, ast.Del)
            ) else "reaches into"
            yield self.finding(
                context,
                node,
                f"{access} protocol state {ast.unparse(receiver)}.{node.attr} "
                "outside its owning module; use the owner's public "
                "accessors (locks are implicit in the intentions lists — "
                "Section 5.1 owns them)",
            )
