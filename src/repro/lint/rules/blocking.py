"""REP106 — no blocking calls in simulated hot paths.

The discrete-event harness models time explicitly: "waiting" is a
scheduled callback, never a suspended thread.  A ``time.sleep`` inside
the simulated network or a site handler stalls the whole single-threaded
simulation for *wall-clock* time without advancing *simulated* time —
throughput numbers silently become nonsense, and the seeded run is no
longer a function of its seed.  Real I/O (sockets, subprocesses,
``input()``) in those paths is the same bug with a bigger constant.

Scope: ``core/``, ``distributed/``, ``sim/``, and ``replication/`` —
the layers that run inside the event loop.  The ``recovery/`` WAL is
deliberately *outside* the scope: durability requires real file I/O.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["BlockingCalls"]

_SCOPED_DIRS = ("/core/", "/distributed/", "/sim/", "/replication/")

#: (module, attribute) calls that block the thread.
_BLOCKING_ATTR_CALLS = {
    ("time", "sleep"),
    ("socket", "socket"),
    ("socket", "create_connection"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_output"),
    ("subprocess", "check_call"),
    ("subprocess", "Popen"),
    ("os", "system"),
    ("os", "popen"),
    ("requests", "get"),
    ("requests", "post"),
    ("requests", "request"),
    ("urllib", "urlopen"),
    ("request", "urlopen"),
}

#: Bare-name calls that block on external input.
_BLOCKING_NAME_CALLS = {"input", "sleep"}


def _dotted_base(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class BlockingCalls(Rule):
    id = "REP106"
    name = "blocking-calls"
    rationale = (
        "the simulator models waiting as scheduled callbacks; a blocking "
        "call stalls wall-clock time without advancing simulated time"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        path = context.path.replace("\\", "/")
        if not any(fragment in path for fragment in _SCOPED_DIRS):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                base = _dotted_base(node.func.value)
                if base is not None and (base, node.func.attr) in _BLOCKING_ATTR_CALLS:
                    yield self.finding(
                        context,
                        node,
                        f"blocking call {base}.{node.func.attr}() in a "
                        "simulated hot path; model the delay with "
                        "simulator.schedule(...) instead",
                    )
            elif isinstance(node.func, ast.Name):
                if node.func.id in _BLOCKING_NAME_CALLS:
                    yield self.finding(
                        context,
                        node,
                        f"blocking call {node.func.id}() in a simulated hot "
                        "path; the event loop must never suspend the thread",
                    )
