"""REP106 — no blocking calls in simulated hot paths.

The discrete-event harness models time explicitly: "waiting" is a
scheduled callback, never a suspended thread.  A ``time.sleep`` inside
the simulated network or a site handler stalls the whole single-threaded
simulation for *wall-clock* time without advancing *simulated* time —
throughput numbers silently become nonsense, and the seeded run is no
longer a function of its seed.  Real I/O (sockets, subprocesses,
``input()``) in those paths is the same bug with a bigger constant.

Scope: configured in :mod:`repro.lint.config` (``RULE_SCOPES``) — the
layers that run inside an event loop, simulated or real.  The
``recovery/`` WAL is deliberately *outside* the scope (durability
requires real file I/O), and the serving tier's socket modules are
explicitly allowlisted there: real wire I/O is their purpose, while the
tier's pure framing/session modules stay fully checked.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..config import in_scope
from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["BlockingCalls"]

#: (module, attribute) calls that block the thread.
_BLOCKING_ATTR_CALLS = {
    ("time", "sleep"),
    ("socket", "socket"),
    ("socket", "create_connection"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_output"),
    ("subprocess", "check_call"),
    ("subprocess", "Popen"),
    ("os", "system"),
    ("os", "popen"),
    ("requests", "get"),
    ("requests", "post"),
    ("requests", "request"),
    ("urllib", "urlopen"),
    ("request", "urlopen"),
}

#: Bare-name calls that block on external input.
_BLOCKING_NAME_CALLS = {"input", "sleep"}


def _dotted_base(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class BlockingCalls(Rule):
    id = "REP106"
    name = "blocking-calls"
    rationale = (
        "the simulator models waiting as scheduled callbacks; a blocking "
        "call stalls wall-clock time without advancing simulated time"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        if not in_scope(self.id, context.path):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                base = _dotted_base(node.func.value)
                if base is not None and (base, node.func.attr) in _BLOCKING_ATTR_CALLS:
                    yield self.finding(
                        context,
                        node,
                        f"blocking call {base}.{node.func.attr}() in a "
                        "simulated hot path; model the delay with "
                        "simulator.schedule(...) instead",
                    )
            elif isinstance(node.func, ast.Name):
                if node.func.id in _BLOCKING_NAME_CALLS:
                    yield self.finding(
                        context,
                        node,
                        f"blocking call {node.func.id}() in a simulated hot "
                        "path; the event loop must never suspend the thread",
                    )
