"""REP101 — trace-event discipline.

Every ``tracer.emit(...)`` call site must use an event kind registered in
``obs/events.py::EVENT_KINDS`` and payload keys declared in
``EVENT_PAYLOADS`` for that kind.  The rule also cross-references the
schema against :mod:`repro.obs.checker` statically: every payload key an
``AtomicityChecker`` handler consumes must be declared for its kind, so
the schema, the emit sites, and the oracle can never silently drift
apart.  A mistyped kind or key otherwise surfaces only as a checker that
quietly stops checking.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["TraceEventDiscipline"]


@register
class TraceEventDiscipline(Rule):
    id = "REP101"
    name = "trace-event-discipline"
    rationale = (
        "the streaming oracle (PR 3) certifies runs from events; an "
        "unregistered kind or mistyped payload key silently disables a check"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        kinds = project.event_kinds
        payloads = project.event_payloads
        normalized = context.path.replace(os.sep, "/")
        if normalized.endswith("obs/events.py") and kinds:
            # Schema self-consistency: EVENT_PAYLOADS covers EVENT_KINDS
            # exactly, and every checker-consumed key is declared.
            yield from self._check_schema(context, project)
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                yield self.finding(
                    context,
                    node,
                    "emit() kind must be a string literal so it can be "
                    "checked against EVENT_KINDS",
                )
                continue
            kind = first.value
            if kinds and kind not in kinds:
                yield self.finding(
                    context,
                    node,
                    f"emit() kind {kind!r} is not registered in "
                    "obs/events.py EVENT_KINDS",
                )
                continue
            declared = payloads.get(kind)
            if declared is None:
                continue  # kind registered but schema-less: kinds-only mode
            for keyword in node.keywords:
                if keyword.arg is None:
                    yield self.finding(
                        context,
                        node,
                        f"emit({kind!r}, **...) hides payload keys from "
                        "static checking; pass keys explicitly",
                    )
                elif keyword.arg not in declared:
                    yield self.finding(
                        context,
                        keyword.value,
                        f"payload key {keyword.arg!r} is not declared for "
                        f"{kind!r} in obs/events.py EVENT_PAYLOADS",
                    )

    def _check_schema(
        self, context: FileContext, project: Project
    ) -> Iterable[Finding]:
        kinds = project.event_kinds
        payloads = project.event_payloads
        if not payloads:
            yield Finding(
                rule=self.id,
                path=context.path,
                line=1,
                col=0,
                message="obs/events.py declares no EVENT_PAYLOADS schema",
            )
            return
        for kind in sorted(kinds - set(payloads)):
            yield Finding(
                rule=self.id,
                path=context.path,
                line=1,
                col=0,
                message=f"EVENT_PAYLOADS declares no payload for kind {kind!r}",
            )
        for kind in sorted(set(payloads) - kinds):
            yield Finding(
                rule=self.id,
                path=context.path,
                line=1,
                col=0,
                message=f"EVENT_PAYLOADS names unregistered kind {kind!r}",
            )
        for kind, consumed in sorted(project.checker_consumes.items()):
            declared = payloads.get(kind, frozenset())
            for key in sorted(consumed - declared):
                yield Finding(
                    rule=self.id,
                    path=context.path,
                    line=1,
                    col=0,
                    message=(
                        f"obs/checker.py consumes key {key!r} of {kind!r} "
                        "but EVENT_PAYLOADS does not declare it"
                    ),
                )
