"""REP102 — lock-conflict relations must be symmetric by construction.

Theorem 11/16 requires the lock-conflict relation handed to the LOCK
machine to be a *symmetric* dependency relation; Theorem 17 shows the
guarantee genuinely fails otherwise.  The runtime audit
(``repro audit``) re-derives tables, but only at bounded depth and only
when someone runs it — a transcription slip in a declared relation
should not survive to that point.

Statically provable discipline:

* an :class:`EnumeratedRelation` built from a *literal* collection of
  pairs must contain ``(b, a)`` for every ``(a, b)`` as written;
* a module-level conflict declaration (a name ending in ``_CONFLICT``)
  in ``adts/`` must be symmetric **by construction** — produced by
  ``symmetric_closure(...)``, a symmetric enumerated literal, or an
  expression of already-checked conflicts — or carry an explicit
  ``# repro: symmetric`` marker asserting the predicate is symmetric
  and covered by the runtime audit (the analogue of ``@GuardedBy``:
  an auditable annotation where static proof is undecidable).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..engine import FileContext, Finding, Project, Rule, register

__all__ = ["RelationSymmetry"]

#: Call names that yield symmetric relations by construction.
_SYMMETRIC_BUILDERS = {"symmetric_closure"}

#: Relation-algebra combinators that preserve symmetry when every
#: argument is symmetric.
_SYMMETRY_PRESERVING = {"union", "restrict"}


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_pairs(node: ast.expr) -> Optional[Set[str]]:
    """The pair collection as canonical strings, or None if not literal.

    Elements need not be constants (``Operation(...)`` calls are fine);
    symmetry is checked *as written*, by structural AST equality.
    """
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    rendered: Set[str] = set()
    for element in node.elts:
        if not (isinstance(element, ast.Tuple) and len(element.elts) == 2):
            return None
        left, right = element.elts
        rendered.add(f"{ast.dump(left)}|{ast.dump(right)}")
    return rendered


@register
class RelationSymmetry(Rule):
    id = "REP102"
    name = "relation-symmetry"
    rationale = (
        "Theorem 11/16: hybrid atomicity needs a symmetric dependency "
        "relation; an asymmetric transcription breaks the guarantee"
    )

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        yield from self._check_enumerated_literals(context)
        if "/adts/" in context.path.replace("\\", "/"):
            yield from self._check_conflict_declarations(context)

    # -- literal EnumeratedRelation pair sets --------------------------

    def _check_enumerated_literals(self, context: FileContext):
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and _call_name(node) == "EnumeratedRelation"
                and node.args
            ):
                continue
            pairs = _literal_pairs(node.args[0])
            if pairs is None:
                continue  # not a literal; nothing provable here
            for element in node.args[0].elts:  # type: ignore[union-attr]
                left, right = element.elts  # checked 2-tuples by now
                key = f"{ast.dump(left)}|{ast.dump(right)}"
                mirror = f"{ast.dump(right)}|{ast.dump(left)}"
                if key != mirror and mirror not in pairs:
                    yield self.finding(
                        context,
                        element,
                        "EnumeratedRelation literal is asymmetric as "
                        f"written: {ast.unparse(element)} has no mirror — "
                        "wrap the pair set in symmetric_closure() or add "
                        "the mirrored pair",
                    )
                    break  # one finding per literal is enough

    # -- module-level *_CONFLICT declarations in adts/ -----------------

    def _check_conflict_declarations(self, context: FileContext):
        for node in context.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            names = [
                t.id
                for t in node.targets
                if isinstance(t, ast.Name) and t.id.endswith("_CONFLICT")
            ]
            if not names:
                continue
            if self._symmetric_by_construction(node.value):
                continue
            if context.has_marker("symmetric", node.lineno):
                continue
            yield self.finding(
                context,
                node,
                f"{names[0]} is not symmetric by construction: build it "
                "with symmetric_closure(...) or annotate the declaration "
                "with `# repro: symmetric` once the runtime audit covers it",
            )

    def _symmetric_by_construction(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in _SYMMETRIC_BUILDERS:
                return True
            if name in _SYMMETRY_PRESERVING:
                return all(
                    self._symmetric_by_construction(arg) for arg in value.args
                )
            if name == "EnumeratedRelation" and value.args:
                pairs = _literal_pairs(value.args[0])
                if pairs is not None:
                    return all(
                        f"{p.split('|', 1)[1]}|{p.split('|', 1)[0]}" in pairs
                        for p in pairs
                    )
            return False
        if isinstance(value, ast.Name):
            # Aliasing an existing *_CONFLICT keeps whatever that name
            # already proved; anything else is unproven.
            return value.id.endswith("_CONFLICT")
        return False
