"""``repro lint`` — the CLI entry point for the static analyzer.

Exit codes: 0 clean, 1 findings (or file errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .engine import Runner, all_rules
from .reporters import render_json, render_statistics, render_text

__all__ = ["add_lint_arguments", "run_lint_command", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro`` CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run exclusively "
        "(e.g. REP101,REP104)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip (applied after --select)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def _split_rules(value: Optional[str]) -> Optional[Sequence[str]]:
    """``"REP101,REP104"`` -> ``["REP101", "REP104"]`` (None passes through)."""
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute the lint run described by parsed arguments."""
    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.id}  {cls.name}")
            print(f"        {cls.rationale}")
        return 0
    try:
        runner = Runner(
            select=_split_rules(args.select), ignore=_split_rules(args.ignore)
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    try:
        result = runner.run(args.paths)
    except FileNotFoundError as exc:
        print(f"lint: no such path: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
        if args.statistics:
            print(render_statistics(result))
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based static analyzer for the repo's "
        "concurrency-control invariants.",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
