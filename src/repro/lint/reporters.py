"""Finding reporters: text for humans, JSON for machines."""

from __future__ import annotations

import json
from collections import Counter

from .engine import RunResult

__all__ = ["render_text", "render_json", "render_statistics"]


def render_text(result: RunResult) -> str:
    """One ``path:line:col: RULE message`` line per finding."""
    lines = [finding.render() for finding in result.findings]
    lines.extend(f"error: {error}" for error in result.errors)
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files} file(s)"
        )
    else:
        lines.append(f"clean: {result.files} file(s), 0 findings")
    if result.suppressed:
        lines.append(f"{result.suppressed} finding(s) suppressed by noqa")
    return "\n".join(lines)


def render_json(result: RunResult) -> str:
    """A machine-readable report (stable key order)."""
    return json.dumps(
        {
            "ok": result.ok,
            "files": result.files,
            "suppressed": result.suppressed,
            "errors": list(result.errors),
            "findings": [finding.as_dict() for finding in result.findings],
        },
        indent=2,
        sort_keys=True,
    )


def render_statistics(result: RunResult) -> str:
    """Counts by rule id (including a suppressed total)."""
    counts = Counter(finding.rule for finding in result.findings)
    lines = [f"{rule:8s} {count:>6d}" for rule, count in sorted(counts.items())]
    lines.append(f"{'noqa':8s} {result.suppressed:>6d}")
    return "\n".join(lines)
