"""``repro.lint`` — an AST-based static analyzer for the repo's
concurrency-control invariants.

The runtime oracle (:mod:`repro.obs.checker`) certifies *runs*; this
package certifies the *code at rest*: the static preconditions the
paper's theorems assume.  Six repo-specific rules:

========  ====================  =============================================
id        name                  protects
========  ====================  =============================================
REP101    trace-event           the event taxonomy & checker payload contract
          discipline            (obs/events.py ↔ obs/checker.py, statically)
REP102    relation-symmetry     Theorem 11/16's symmetric dependency relation
REP103    state-encapsulation   Section 5.1's machine-owned protocol state
REP104    determinism           Section 6 clocks & crash-seed reproducibility
REP105    exception-safety      lock discipline & WAL durability on error
                                paths
REP106    blocking-calls        the discrete-event model of waiting
========  ====================  =============================================

Usage::

    python -m repro lint src/repro
    python -m repro lint --select REP104 --format json src/repro

Suppressions are explicit annotations: ``# repro: noqa[REP104]``.
See ``docs/static-analysis.md`` for the rule ↔ paper-precondition map.
"""

from __future__ import annotations

from .config import RULE_SCOPES, RuleScope, allowlisted, in_scope
from .engine import (
    FileContext,
    Finding,
    Project,
    Rule,
    Runner,
    RunResult,
    all_rules,
    iter_python_files,
    register,
)
from .reporters import render_json, render_statistics, render_text

__all__ = [
    "RULE_SCOPES",
    "RuleScope",
    "allowlisted",
    "in_scope",
    "FileContext",
    "Finding",
    "Project",
    "Rule",
    "Runner",
    "RunResult",
    "all_rules",
    "iter_python_files",
    "register",
    "render_json",
    "render_statistics",
    "render_text",
    "run_lint",
]


def run_lint(paths, select=None):
    """Convenience API: lint ``paths`` and return a :class:`RunResult`."""
    return Runner(select=select).run(paths)
