"""The lint engine: one AST parse per file, shared across rules.

``repro lint`` is a repo-specific static analyzer in the spirit of
lockset/annotation checkers (ERASER, ``@GuardedBy``): it proves *static
preconditions* of the paper's theorems from source, before any run.

Architecture
------------

* :class:`FileContext` — one parsed file: source, AST, line table, and
  the ``# repro: noqa[RULE-ID]`` / ``# repro: <marker>`` comment maps.
  Parsing happens exactly once; every rule walks the same tree.
* :class:`Rule` — a named check.  Subclasses implement :meth:`check`
  and register themselves with the :func:`register` decorator.
* :class:`Project` — lazily extracted cross-file facts (the event-kind
  registry, the checker's consumed payload keys); shared by rules that
  cross-reference modules.
* :class:`Runner` — walks the requested paths, builds contexts, runs
  every enabled rule, and filters suppressed findings.

Suppressions
------------

A finding on line *N* is suppressed when line *N* (or the first line of
the enclosing statement) carries::

    # repro: noqa[REP104]            — suppress one rule
    # repro: noqa[REP104,REP105]     — suppress several
    # repro: noqa                    — suppress every rule (discouraged)

Suppressions are deliberate, reviewable annotations — the analyzer
counts them, and ``--statistics`` reports how many are in force.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Type

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "Rule",
    "Runner",
    "register",
    "all_rules",
    "iter_python_files",
]

#: ``# repro: noqa[REP101,REP102]`` or bare ``# repro: noqa``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: ``# repro: <marker>`` annotations other than noqa (e.g. ``symmetric``).
_MARKER_RE = re.compile(r"#\s*repro:\s*(?!noqa)(?P<marker>[a-z][a-z0-9-]*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``severity`` is ``"error"`` (the default: the finding voids a paper
    precondition and fails the run) or ``"warning"`` (reported, counted,
    but not fatal — e.g. a sound-but-non-minimal conflict table).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule}{tag} {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


class FileContext:
    """One file's source, AST, and comment annotations (parsed once)."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: line -> set of suppressed rule ids ('*' means every rule).
        self.noqa: Dict[int, Set[str]] = {}
        #: line -> set of ``# repro: <marker>`` annotations.
        self.markers: Dict[int, Set[str]] = {}
        self._scan_comments()
        #: line -> first line of the enclosing statement (for multi-line
        #: statements, a noqa on the statement's first line covers it).
        self.statement_start: Dict[int, int] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.stmt) and getattr(node, "end_lineno", None):
                for line in range(node.lineno, node.end_lineno + 1):
                    current = self.statement_start.get(line)
                    if current is None or current < node.lineno:
                        # Keep the innermost statement (largest start).
                        self.statement_start[line] = node.lineno

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                noqa = _NOQA_RE.search(token.string)
                if noqa:
                    rules = noqa.group("rules")
                    ids = (
                        {r.strip() for r in rules.split(",") if r.strip()}
                        if rules
                        else {"*"}
                    )
                    self.noqa.setdefault(line, set()).update(ids)
                for marker in _MARKER_RE.finditer(token.string):
                    self.markers.setdefault(line, set()).add(marker.group("marker"))
        except tokenize.TokenError:
            pass  # a torn file still lints on whatever parsed

    def suppressed(self, rule: str, line: int) -> bool:
        """True when the finding is silenced by a noqa on its line or on
        the first line of the enclosing statement."""
        for candidate in {line, self.statement_start.get(line, line)}:
            ids = self.noqa.get(candidate)
            if ids and ("*" in ids or rule in ids):
                return True
        return False

    def has_marker(self, marker: str, line: int) -> bool:
        """True when ``# repro: <marker>`` annotates the line or the first
        line of the enclosing statement."""
        for candidate in {line, self.statement_start.get(line, line)}:
            if marker in self.markers.get(candidate, ()):
                return True
        return False


def _module_assignment(tree: ast.Module, name: str) -> Optional[ast.expr]:
    """The value expression of the module-level binding of ``name``.

    Handles both plain ``NAME = ...`` and annotated
    ``NAME: SomeType = ...`` forms.
    """
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            return node.value
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
            and node.value is not None
        ):
            return node.value
    return None


class Project:
    """Cross-file facts extracted from the ``repro`` package itself.

    The lint rules cross-reference the *real* event registry and checker,
    wherever the linted files live (fixtures under ``tests/lint`` are
    checked against the same schema as the tree).
    """

    def __init__(self, package_root: Optional[str] = None):
        if package_root is None:
            package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        self.package_root = package_root
        self._event_kinds: Optional[FrozenSet[str]] = None
        self._event_payloads: Optional[Dict[str, FrozenSet[str]]] = None
        self._checker_consumes: Optional[Dict[str, FrozenSet[str]]] = None

    # -- obs/events.py -------------------------------------------------

    def _events_tree(self) -> ast.Module:
        path = os.path.join(self.package_root, "obs", "events.py")
        with open(path, encoding="utf-8") as handle:
            return ast.parse(handle.read(), filename=path)

    @property
    def event_kinds(self) -> FrozenSet[str]:
        """``EVENT_KINDS`` read statically from ``obs/events.py``."""
        if self._event_kinds is None:
            kinds: Set[str] = set()
            node = _module_assignment(self._events_tree(), "EVENT_KINDS")
            if node is not None:
                for constant in ast.walk(node):
                    if isinstance(constant, ast.Constant) and isinstance(
                        constant.value, str
                    ):
                        kinds.add(constant.value)
            self._event_kinds = frozenset(kinds)
        return self._event_kinds

    @property
    def event_payloads(self) -> Dict[str, FrozenSet[str]]:
        """``EVENT_PAYLOADS`` read statically from ``obs/events.py``."""
        if self._event_payloads is None:
            payloads: Dict[str, FrozenSet[str]] = {}
            node = _module_assignment(self._events_tree(), "EVENT_PAYLOADS")
            if node is not None:
                for call in ast.walk(node):
                    if isinstance(call, ast.Dict):
                        for key, value in zip(call.keys, call.values):
                            if not (
                                isinstance(key, ast.Constant)
                                and isinstance(key.value, str)
                            ):
                                continue
                            keys = {
                                c.value
                                for c in ast.walk(value)
                                if isinstance(c, ast.Constant)
                                and isinstance(c.value, str)
                            }
                            payloads[key.value] = frozenset(keys)
                        break
            self._event_payloads = payloads
        return self._event_payloads

    # -- obs/checker.py ------------------------------------------------

    @property
    def checker_consumes(self) -> Dict[str, FrozenSet[str]]:
        """kind -> payload keys the :class:`AtomicityChecker` reads.

        Extracted statically: the ``check_event`` dispatch chain maps kind
        literals to ``_on_*`` handlers; each handler body is scanned for
        ``data.get("key")`` / ``data["key"]`` accesses.
        """
        if self._checker_consumes is None:
            path = os.path.join(self.package_root, "obs", "checker.py")
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            consumes: Dict[str, Set[str]] = {}
            for cls in tree.body:
                if not (
                    isinstance(cls, ast.ClassDef) and cls.name == "AtomicityChecker"
                ):
                    continue
                methods = {
                    m.name: m for m in cls.body if isinstance(m, ast.FunctionDef)
                }
                check_event = methods.get("check_event")
                if check_event is None:
                    continue
                for stmt in check_event.body:
                    if isinstance(stmt, ast.If):
                        self._scan_dispatch(stmt, methods, consumes)
            self._checker_consumes = {
                kind: frozenset(keys) for kind, keys in consumes.items()
            }
        return self._checker_consumes

    @staticmethod
    def _data_keys(nodes: Iterable[ast.stmt]) -> Set[str]:
        keys: Set[str] = set()
        module = ast.Module(body=list(nodes), type_ignores=[])
        for node in ast.walk(module):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "data"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                keys.add(node.args[0].value)
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "data"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.add(node.slice.value)
        return keys

    def _scan_dispatch(
        self,
        stmt: ast.If,
        methods: Dict[str, ast.FunctionDef],
        consumes: Dict[str, Set[str]],
    ) -> None:
        node: Optional[ast.If] = stmt
        while node is not None:
            kinds = [
                c.value
                for c in ast.walk(node.test)
                if isinstance(c, ast.Constant) and isinstance(c.value, str)
            ]
            keys = self._data_keys(node.body)
            for branch in ast.walk(ast.Module(body=node.body, type_ignores=[])):
                if (
                    isinstance(branch, ast.Call)
                    and isinstance(branch.func, ast.Attribute)
                    and branch.func.attr.startswith("_on_")
                    and branch.func.attr in methods
                ):
                    keys |= self._data_keys(methods[branch.func.attr].body)
            for kind in kinds:
                consumes.setdefault(kind, set()).update(keys)
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
            else:
                node = None


class Rule:
    """Base class for lint rules.  Subclasses set :attr:`id`,
    :attr:`name`, :attr:`rationale` and implement :meth:`check`."""

    id: str = "REP000"
    name: str = "unnamed"
    #: One line tying the rule to the paper precondition it protects.
    rationale: str = ""

    def check(self, context: FileContext, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        context: FileContext,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, in id order."""
    from . import rules  # noqa: F401  — importing registers the rules

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git"}
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(set(out))


@dataclass
class RunResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        # Warnings are reported and counted but do not fail the run.
        return not self.errors and not any(
            finding.severity == "error" for finding in self.findings
        )


class Runner:
    """Run every (selected) rule over a set of paths."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        project: Optional[Project] = None,
    ):
        classes = all_rules()
        known = {cls.id for cls in classes}
        for requested in (select, ignore):
            if requested:
                unknown = set(requested) - known
                if unknown:
                    raise ValueError(
                        f"unknown rule id(s): {', '.join(sorted(unknown))}"
                    )
        if select:
            wanted = set(select)
            classes = [cls for cls in classes if cls.id in wanted]
        if ignore:
            dropped = set(ignore)
            classes = [cls for cls in classes if cls.id not in dropped]
        self.rules: List[Rule] = [cls() for cls in classes]
        self.project = project or Project()

    def run(self, paths: Sequence[str]) -> RunResult:
        result = RunResult()
        for path in iter_python_files(paths):
            try:
                with open(path, encoding="utf-8") as handle:
                    context = FileContext(path, handle.read())
            except (OSError, SyntaxError, ValueError) as exc:
                result.errors.append(f"{path}: {exc}")
                continue
            result.files += 1
            for rule in self.rules:
                for finding in rule.check(context, self.project):
                    if context.suppressed(finding.rule, finding.line):
                        result.suppressed += 1
                    else:
                        result.findings.append(finding)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result
