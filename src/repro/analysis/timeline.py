"""Rendering histories as per-transaction timelines.

A debugging/teaching aid: lays a history out as swimlanes, one column per
transaction, one row per event, so interleavings (and the timestamp order
versus arrival order) can be read at a glance::

    step | obj | P            | Q            | R
    -----+-----+--------------+--------------+-------------
       1 | X   | Enq(1)?      |              |
       2 | X   | -> 'Ok'      |              |
       ...
       7 | X   | commit @2    |              |
       8 | X   |              | commit @1    |

Used by the examples and handy when an atomicity checker says "no" and
you want to see why.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.events import AbortEvent, CommitEvent, InvocationEvent, ResponseEvent
from ..core.history import History

__all__ = ["render_timeline"]


def _cell(event) -> str:
    if isinstance(event, InvocationEvent):
        return f"{event.invocation}?"
    if isinstance(event, ResponseEvent):
        return f"-> {event.result!r}"
    if isinstance(event, CommitEvent):
        return f"commit @{event.timestamp}"
    if isinstance(event, AbortEvent):
        return "abort"
    return str(event)  # pragma: no cover - defensive


def render_timeline(
    history: History, transactions: Optional[Sequence[str]] = None
) -> str:
    """Render ``history`` as a swimlane table.

    ``transactions`` fixes the column order (default: order of first
    appearance).  Events of transactions not listed are dropped.
    """
    if transactions is None:
        transactions = history.transactions()
    columns = list(transactions)
    wanted = set(columns)

    rows: List[List[str]] = []
    for step, event in enumerate(history, start=1):
        if event.transaction not in wanted:
            continue
        cells = [""] * len(columns)
        cells[columns.index(event.transaction)] = _cell(event)
        rows.append([str(step), event.obj, *cells])

    headers = ["step", "obj", *columns]
    table = [headers] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        line = " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)
