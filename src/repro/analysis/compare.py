"""Comparing relations: concurrency orderings between protocols.

Section 7.1's comparisons are set-inclusion statements about conflict
relations over an operation universe: fewer conflicting pairs = more
admissible interleavings.  :func:`compare_relations` classifies a pair of
relations as equal / subset / superset / incomparable, and
:func:`concurrency_score` summarises a relation as the fraction of
operation pairs left concurrent — the statistic printed by the
table-reproduction benchmarks alongside each figure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

from ..core.conflict import Relation
from ..core.operations import Operation

__all__ = ["Ordering", "compare_relations", "concurrency_score", "ComparisonReport"]


class Ordering(enum.Enum):
    """How two relations compare as sets of pairs over a universe."""

    EQUAL = "equal"
    SUBSET = "strictly less restrictive"
    SUPERSET = "strictly more restrictive"
    INCOMPARABLE = "incomparable"


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of comparing relation ``left`` against ``right``."""

    ordering: Ordering
    only_left: FrozenSet[Tuple[Operation, Operation]]
    only_right: FrozenSet[Tuple[Operation, Operation]]

    def __str__(self) -> str:
        return self.ordering.value


def compare_relations(
    left: Relation, right: Relation, universe: Sequence[Operation]
) -> ComparisonReport:
    """Classify ``left`` vs ``right`` over a finite universe.

    ``SUBSET`` means ``left``'s pairs are strictly contained in
    ``right``'s — i.e. ``left`` permits strictly more concurrency.
    """
    left_pairs = left.pairs(universe)
    right_pairs = right.pairs(universe)
    only_left = frozenset(left_pairs - right_pairs)
    only_right = frozenset(right_pairs - left_pairs)
    if not only_left and not only_right:
        ordering = Ordering.EQUAL
    elif not only_left:
        ordering = Ordering.SUBSET
    elif not only_right:
        ordering = Ordering.SUPERSET
    else:
        ordering = Ordering.INCOMPARABLE
    return ComparisonReport(ordering, only_left, only_right)


def concurrency_score(relation: Relation, universe: Sequence[Operation]) -> float:
    """Fraction of ordered operation pairs the relation leaves concurrent.

    1.0 means nothing ever conflicts; 0.0 means serial execution.
    """
    total = len(universe) ** 2
    if total == 0:
        return 1.0
    conflicting = len(relation.pairs(universe))
    return 1.0 - conflicting / total
