"""Analysis tools: figure tables, relation comparison, derivation reports."""

from .audit import AuditFinding, AuditReport, audit_adt
from .compare import ComparisonReport, Ordering, compare_relations, concurrency_score
from .derive import FigureReport, derive_commutativity_figure, derive_figure
from .report import generate_report
from .graph import (
    conflict_graph,
    conflict_serialization_order,
    timestamp_order_consistent,
    topological_order,
)
from .tables import render_grid, render_relation, render_schema_relation, schema_of
from .timeline import render_timeline

__all__ = [
    "AuditFinding",
    "AuditReport",
    "audit_adt",
    "render_relation",
    "render_schema_relation",
    "render_grid",
    "render_timeline",
    "conflict_graph",
    "topological_order",
    "conflict_serialization_order",
    "timestamp_order_consistent",
    "schema_of",
    "Ordering",
    "ComparisonReport",
    "compare_relations",
    "concurrency_score",
    "FigureReport",
    "derive_figure",
    "derive_commutativity_figure",
    "generate_report",
]
