"""Conflict (serialization) graphs over typed operations.

The classical serialization-graph test generalises to typed operations:
draw an edge ``P -> Q`` whenever some operation of ``Q`` follows a
*conflicting* operation of ``P`` at the same object.

For **commutativity-based** conflict relations, non-conflicting
operations commute, their order is unobservable, and any topological
order of the graph serializes the history — the textbook result.

For the paper's weaker **dependency-based** relations the graph alone is
*not* enough, and this module is the place where the thesis of the paper
becomes concrete: concurrent enqueues never conflict under Figure 4-2,
yet their relative order is observable through later dequeues.  The
missing constraints are exactly the commit timestamps — hybrid histories
serialize in any topological order of ``conflict edges ∪ TS edges``,
which (TS being total on committed transactions) is the timestamp order
itself.  The polynomial check this yields:

* :func:`conflict_serialization_order` — returns the witness order, or
  ``None`` when the combined graph has a cycle;
* with ``include_timestamp_order=False`` it degrades to the classical
  test, sound only when the conflict relation contains
  failure-to-commute.

Either way it is a cheap cross-check for the factorial brute-force
checkers, and the 2PL property "timestamp order never contradicts the
conflict order" becomes a testable invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.conflict import Relation
from ..core.history import History

__all__ = [
    "conflict_graph",
    "topological_order",
    "conflict_serialization_order",
    "timestamp_order_consistent",
]


def conflict_graph(history: History, conflict: Relation) -> Dict[str, Set[str]]:
    """Edges ``P -> {Q, ...}`` over the committed transactions.

    ``P -> Q`` when, at some object, a completed operation of ``P``
    precedes a conflicting completed operation of ``Q``.
    """
    from ..core.events import InvocationEvent, ResponseEvent
    from ..core.operations import Operation

    permanent = history.permanent()
    committed = sorted(permanent.committed())
    edges: Dict[str, Set[str]] = {t: set() for t in committed}
    for obj in permanent.objects():
        local = permanent.restrict_objects(obj)
        # The interleaved completed-operation order at this object.
        ordered: List[Tuple[str, object]] = []
        pending: Dict[str, object] = {}
        for event in local:
            if isinstance(event, InvocationEvent):
                pending[event.transaction] = event.invocation
            elif isinstance(event, ResponseEvent):
                invocation = pending.pop(event.transaction, None)
                if invocation is not None and event.transaction in edges:
                    ordered.append(
                        (event.transaction, Operation(invocation, event.result))
                    )
        for i, (p_txn, p_op) in enumerate(ordered):
            for q_txn, q_op in ordered[i + 1 :]:
                if p_txn == q_txn:
                    continue
                if conflict.related(p_op, q_op) or conflict.related(q_op, p_op):
                    edges[p_txn].add(q_txn)
    return edges


def topological_order(edges: Dict[str, Set[str]]) -> Optional[List[str]]:
    """A (deterministic) topological order, or None if the graph cycles."""
    indegree = {node: 0 for node in edges}
    for targets in edges.values():
        for target in targets:
            indegree[target] += 1
    frontier = sorted(node for node, degree in indegree.items() if degree == 0)
    order: List[str] = []
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        for target in sorted(edges[node]):
            indegree[target] -= 1
            if indegree[target] == 0:
                frontier.append(target)
        frontier.sort()
    if len(order) != len(edges):
        return None
    return order


def timestamp_order_consistent(history: History, conflict: Relation) -> bool:
    """The two-phase invariant: no conflict edge contradicts ``TS(H)``.

    If ``P -> Q`` is a conflict edge, ``P``'s timestamp must be smaller
    than ``Q``'s.  The hybrid protocol guarantees this (a conflict edge
    means the earlier holder completed before the later requester ran,
    hence precedes, hence smaller timestamp).
    """
    stamps = history.timestamps()
    edges = conflict_graph(history, conflict)
    return all(
        stamps[p] < stamps[q]
        for p, targets in edges.items()
        for q in targets
        if p in stamps and q in stamps
    )


def conflict_serialization_order(
    history: History,
    conflict: Relation,
    include_timestamp_order: bool = True,
) -> Optional[List[str]]:
    """A polynomial serialization witness for the committed transactions.

    With ``include_timestamp_order=True`` (default) the graph is the
    union of conflict edges and timestamp edges; sound for any conflict
    relation containing a symmetric dependency relation (Theorem 16's
    regime) — in effect it verifies the two-phase invariant and hands
    back the timestamp order.

    With ``include_timestamp_order=False`` only conflict edges are used —
    the classical test, sound only when non-conflicting operations
    commute (conflict relation contains failure-to-commute).

    Returns ``None`` when the graph has a cycle.
    """
    edges = conflict_graph(history, conflict)
    if include_timestamp_order:
        stamps = history.timestamps()
        ranked = sorted((t for t in edges), key=lambda t: stamps[t])
        for earlier, later in zip(ranked, ranked[1:]):
            edges[earlier].add(later)
    return topological_order(edges)
