"""High-level derivation helpers tying ADTs to the core machinery.

These wrappers power the figure-reproduction benchmarks: derive a table
from the serial specification, verify it against the paper's predicate
table, check dependency-relation-hood and minimality, and package the
whole thing as a report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..adts.base import ADT
from ..core.commutativity import failure_to_commute
from ..core.conflict import EnumeratedRelation, Relation
from ..core.dependency import (
    check_dependency_relation,
    is_dependency_relation,
    is_minimal_dependency_relation,
)
from ..core.invalidated_by import invalidated_by
from ..core.operations import Operation
from .tables import render_schema_relation

__all__ = ["FigureReport", "derive_figure", "derive_commutativity_figure"]


@dataclass
class FigureReport:
    """Everything the table benchmarks assert and print about one figure."""

    title: str
    derived: EnumeratedRelation
    expected: EnumeratedRelation
    matches_paper: bool
    is_dependency: bool
    is_minimal: Optional[bool]
    universe: Sequence[Operation]

    def render(self) -> str:
        """Paper-style schema table plus the verification verdicts."""
        lines = [self.title, ""]
        lines.append(render_schema_relation(self.derived, list(self.universe)))
        lines.append("")
        lines.append(f"matches paper table : {self.matches_paper}")
        lines.append(f"dependency relation : {self.is_dependency}")
        if self.is_minimal is not None:
            lines.append(f"minimal             : {self.is_minimal}")
        return "\n".join(lines)


def derive_figure(
    adt: ADT,
    universe: Sequence[Operation],
    title: str,
    max_h1: int = 3,
    max_h2: int = 2,
    check_minimal: bool = False,
) -> FigureReport:
    """Derive invalidated-by for the ADT and compare with its paper table."""
    derived = invalidated_by(adt.spec, universe, max_h1=max_h1, max_h2=max_h2)
    expected = adt.dependency.restrict(universe)
    report = FigureReport(
        title=title,
        derived=derived,
        expected=expected,
        matches_paper=derived.pair_set == expected.pair_set,
        is_dependency=is_dependency_relation(derived, adt.spec, list(universe)),
        is_minimal=(
            is_minimal_dependency_relation(derived, adt.spec, list(universe))
            if check_minimal
            else None
        ),
        universe=universe,
    )
    return report


def derive_commutativity_figure(
    adt: ADT,
    universe: Sequence[Operation],
    title: str,
    max_h: int = 3,
) -> FigureReport:
    """Derive failure-to-commute and compare with the ADT's paper table."""
    derived = failure_to_commute(adt.spec, universe, max_h=max_h)
    expected = adt.commutativity_conflict.restrict(universe)
    return FigureReport(
        title=title,
        derived=derived,
        expected=expected,
        matches_paper=derived.pair_set == expected.pair_set,
        is_dependency=is_dependency_relation(derived, adt.spec, list(universe)),
        is_minimal=None,
        universe=universe,
    )
