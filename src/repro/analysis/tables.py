"""Rendering relations as the paper's figure-style tables.

The paper presents dependency and conflict relations as square tables with
an entry giving the condition under which the *row* operation depends on
the *column* operation (Figures 4-1 .. 4-5, 7-1).  Given a finite
operation universe, :func:`render_relation` reproduces that presentation,
and :func:`render_schema_relation` collapses a parameterised universe to
operation *schemas* (name + result class), summarising each cell as
``true`` / blank / the set of related argument pairs — which is how the
benchmark output mirrors the published figures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..core.conflict import Relation
from ..core.operations import Operation

__all__ = ["render_relation", "render_schema_relation", "render_grid", "schema_of"]


def render_grid(
    headers: Sequence[str], rows: Sequence[Sequence[str]], corner: str = ""
) -> str:
    """Plain-text grid with padded columns (first column = row labels)."""
    table: List[List[str]] = [[corner, *headers]]
    for row in rows:
        table.append([str(cell) for cell in row])
    widths = [max(len(r[i]) for r in table) for i in range(len(table[0]))]
    lines = []
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line.rstrip()))
    return "\n".join(lines)


def render_relation(relation: Relation, universe: Sequence[Operation]) -> str:
    """Fully enumerated table: one row/column per concrete operation.

    A cell shows ``X`` when the row operation depends on (or conflicts
    with) the column operation.
    """
    headers = [str(p) for p in universe]
    rows = []
    for q in universe:
        rows.append(
            [str(q)] + ["X" if relation.related(q, p) else "" for p in universe]
        )
    return render_grid(headers, rows, corner=relation.name)


def schema_of(operation: Operation) -> str:
    """The operation's schema: name plus result *kind*.

    Results that vary with arguments/state (values read, items dequeued)
    collapse to the generic marker ``v``; symbolic results ("Ok",
    "Overdraft", booleans) are kept, matching the granularity of the
    paper's tables (e.g. ``Debit,Ok`` vs ``Debit,Overdraft``).
    """
    result = operation.result
    if isinstance(result, str):
        label = result
    elif result is True or result is False:
        label = str(result)
    elif isinstance(result, tuple) and result and isinstance(result[0], str):
        label = result[0]  # e.g. ("Found", v) -> "Found"
    else:
        label = "v"
    return f"{operation.name},{label}"


def render_schema_relation(
    relation: Relation,
    universe: Sequence[Operation],
    schema: Callable[[Operation], str] = schema_of,
) -> str:
    """Collapse a parameterised universe to operation schemas.

    Each cell summarises the relation between two schemas over the
    universe: blank when no instance pair is related, ``true`` when every
    instance pair is related, and the fraction ``k/n`` otherwise (the
    value-dependent conditions like ``v != v'``).
    """
    schemas: List[str] = []
    members: Dict[str, List[Operation]] = {}
    for operation in universe:
        key = schema(operation)
        if key not in members:
            schemas.append(key)
            members[key] = []
        members[key].append(operation)

    rows = []
    for row_schema in schemas:
        cells = [row_schema]
        for col_schema in schemas:
            related = 0
            total = 0
            for q in members[row_schema]:
                for p in members[col_schema]:
                    total += 1
                    if relation.related(q, p):
                        related += 1
            if related == 0:
                cells.append("")
            elif related == total:
                cells.append("true")
            else:
                cells.append(f"{related}/{total}")
        rows.append(cells)
    return render_grid(schemas, rows, corner=relation.name)
