"""Auditing an ADT bundle against the paper's requirements.

Anyone adding a new type to :mod:`repro.adts` hand-writes three relations
(dependency, conflict, failure-to-commute).  :func:`audit_adt` re-derives
everything from the serial specification and checks the bundle end to
end:

1. the conflict relation is symmetric (a protocol precondition);
2. the declared dependency relation matches derived invalidated-by over
   the universe (or is independently a dependency relation, for
   alternatives like the queue's Figure 4-3);
3. the declared dependency and conflict relations satisfy Definition 3;
4. the declared failure-to-commute table matches the derived one and is
   itself a dependency relation (Theorem 28);
5. optionally, the dependency relation is minimal.

The CLI's ``audit`` command runs this for every registered type; the test
suite runs it too, so a mis-transcribed table cannot land silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..adts.base import ADT
from ..core.commutativity import failure_to_commute
from ..core.conflict import is_symmetric
from ..core.dependency import (
    is_dependency_relation,
    is_minimal_dependency_relation,
)
from ..core.invalidated_by import invalidated_by
from ..core.operations import Operation

__all__ = ["AuditFinding", "AuditReport", "audit_adt"]


@dataclass(frozen=True)
class AuditFinding:
    """One audit check: name, outcome, and an optional detail message."""

    check: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.check}{suffix}"


@dataclass
class AuditReport:
    """All findings for one type."""

    adt_name: str
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(finding.passed for finding in self.findings)

    def render(self) -> str:
        lines = [f"audit: {self.adt_name}"]
        lines.extend(f"  {finding}" for finding in self.findings)
        lines.append(f"  => {'ALL CHECKS PASS' if self.passed else 'FAILURES PRESENT'}")
        return "\n".join(lines)


def _diff_detail(derived, declared, universe) -> str:
    extra = derived.pair_set - declared.pair_set
    missing = declared.pair_set - derived.pair_set
    parts = []
    if extra:
        q, p = sorted(extra, key=str)[0]
        parts.append(f"derived has extra e.g. ({q}, {p})")
    if missing:
        q, p = sorted(missing, key=str)[0]
        parts.append(f"declared has extra e.g. ({q}, {p})")
    return "; ".join(parts)


def audit_adt(
    adt: ADT,
    universe: Sequence[Operation],
    max_h1: int = 3,
    max_h2: int = 2,
    mc_depth: int = 3,
    check_minimal: bool = False,
) -> AuditReport:
    """Run the full audit for one ADT bundle over a finite universe."""
    report = AuditReport(adt.name)
    spec = adt.spec
    ops = list(universe)

    report.findings.append(
        AuditFinding(
            "conflict relation is symmetric",
            is_symmetric(adt.conflict, ops),
        )
    )

    derived_dep = invalidated_by(spec, ops, max_h1=max_h1, max_h2=max_h2)
    declared_dep = adt.dependency.restrict(ops)
    matches = derived_dep.pair_set == declared_dep.pair_set
    report.findings.append(
        AuditFinding(
            "declared dependency matches derived invalidated-by",
            matches,
            "" if matches else _diff_detail(derived_dep, declared_dep, ops),
        )
    )

    report.findings.append(
        AuditFinding(
            "declared dependency satisfies Definition 3",
            is_dependency_relation(declared_dep, spec, ops),
        )
    )
    report.findings.append(
        AuditFinding(
            "conflict relation satisfies Definition 3",
            is_dependency_relation(adt.conflict, spec, ops),
        )
    )

    for label, alternative in sorted(adt.alternative_dependencies.items()):
        report.findings.append(
            AuditFinding(
                f"alternative dependency {label!r} satisfies Definition 3",
                is_dependency_relation(alternative, spec, ops),
            )
        )

    derived_mc = failure_to_commute(spec, ops, max_h=mc_depth)
    declared_mc = adt.commutativity_conflict.restrict(ops)
    mc_matches = derived_mc.pair_set == declared_mc.pair_set
    report.findings.append(
        AuditFinding(
            "declared failure-to-commute matches derived",
            mc_matches,
            "" if mc_matches else _diff_detail(derived_mc, declared_mc, ops),
        )
    )
    report.findings.append(
        AuditFinding(
            "failure-to-commute satisfies Definition 3 (Theorem 28)",
            is_dependency_relation(derived_mc, spec, ops),
        )
    )
    report.findings.append(
        AuditFinding(
            "failure-to-commute is symmetric",
            is_symmetric(adt.commutativity_conflict, ops),
        )
    )

    if check_minimal:
        report.findings.append(
            AuditFinding(
                "declared dependency is minimal",
                is_minimal_dependency_relation(declared_dep, spec, ops),
            )
        )
    return report
