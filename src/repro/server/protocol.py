"""The versioned, length-prefixed JSON wire protocol.

Frame layout::

    +----------------+----------------------------------------+
    | 4 bytes, !I    | UTF-8 JSON body (``length`` bytes)     |
    | body length    |                                        |
    +----------------+----------------------------------------+

Every body is a JSON object carrying ``"v"`` (the protocol version,
checked per message so a single connection can never silently mix
versions) and ``"id"`` (the client-chosen request id, echoed verbatim in
the response — the key to idempotent commit-ack retry).  Payload values
— operation argument tuples, :class:`fractions.Fraction` balances,
horizon sentinels, state-set frozensets — are encoded with the tagged
codec from :mod:`repro.obs.codec`, so whatever round-trips through a
trace file round-trips over the wire byte-for-byte too.

Requests name an ``action`` (``ping``, ``create``, ``begin``,
``invoke``, ``commit``, ``abort``, and the introspection ops ``stats``
and ``health``) plus action-specific ``params``; a request may also
carry an optional ``trace`` context — ``{"id": str, "sent": float}``,
the client-minted trace id and its send timestamp — which the server
threads into every ``server.*`` event it emits for the request, so an
end-to-end span can attribute each wire phase to the originating
client call.  The field is additive and ignored by older peers, so it
rides protocol version 1.  Responses are
``{"v", "id", "ok": true, "result": {...}}`` or
``{"v", "id", "ok": false, "error": {"code", "message"}}``.  Error
codes are the closed :data:`ERROR_CODES` set — a server must answer
*every* framing or semantic failure with a typed error (never by
crashing the event loop), and a client can dispatch on the code alone.

:class:`FrameDecoder` is an incremental push parser: feed it whatever
``recv`` returned — half a header, three frames and a torn fourth — and
it yields each completed message exactly once.  Frame-level violations
(oversized frame, malformed JSON, non-object body) raise
:class:`FrameError` with the error code the server should answer with
before closing the connection.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import ReproError
from ..obs.codec import decode_value, encode_value

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "HEADER",
    "ACTIONS",
    "ERROR_CODES",
    "WireError",
    "FrameError",
    "Request",
    "Response",
    "encode_frame",
    "request_frame",
    "response_frame",
    "error_frame",
    "parse_request",
    "parse_response",
    "FrameDecoder",
]

#: Bump on any incompatible frame/body change; servers answer frames
#: carrying any other version with a ``BAD_VERSION`` error.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's body.  Large enough for any operation
#: batch the runtime accepts, small enough that a garbage length prefix
#: (e.g. an HTTP request aimed at our port) cannot balloon memory.
MAX_FRAME_BYTES = 1 << 20

#: The 4-byte network-order unsigned length prefix.
HEADER = struct.Struct("!I")

#: The closed set of request actions.  ``stats`` and ``health`` are the
#: in-band introspection ops: answered inline by the server (never
#: queued behind shard work), so they stay responsive under load.
ACTIONS = frozenset(
    {
        "ping",
        "create",
        "begin",
        "invoke",
        "commit",
        "abort",
        "stats",
        "health",
    }
)

#: The closed set of error codes a response may carry.
ERROR_CODES = frozenset(
    {
        "BAD_FRAME",        # undecodable body: not JSON / not an object
        "FRAME_TOO_LARGE",  # length prefix beyond the negotiated maximum
        "BAD_VERSION",      # protocol version mismatch
        "BAD_REQUEST",      # missing/unknown action or malformed params
        "UNKNOWN_OBJECT",   # no managed object by that name
        "UNKNOWN_TXN",      # no such transaction handle in this session
        "CONFLICT",         # lock refused (retry after abort)
        "WOULD_BLOCK",      # no legal outcome yet (retry)
        "ABORTED",          # transaction no longer active
        "BUSY",             # work queue past its high-water mark
        "SHUTTING_DOWN",    # server is draining; no new transactions
        "CROSS_SHARD",      # transaction bound to another worker's shard
        "SHARD_DOWN",       # shard worker process died; txn presumed aborted
        "INTERNAL",         # unexpected server-side failure
    }
)


class WireError(ReproError):
    """A typed protocol-level failure (client side or server side)."""

    def __init__(self, code: str, message: str = ""):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message or code)
        self.code = code
        self.message = message or code


class FrameError(WireError):
    """A frame-level violation: answer with the code, then disconnect."""


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    id: int
    action: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Optional client trace context: ``{"id": str, "sent": float}``.
    trace: Optional[Mapping[str, Any]] = None

    @property
    def trace_id(self) -> Optional[str]:
        """The client-minted trace id, when the request carried one."""
        return self.trace.get("id") if self.trace else None

    @property
    def sent(self) -> Optional[float]:
        """The client's send timestamp, when the request carried one."""
        value = self.trace.get("sent") if self.trace else None
        return value if isinstance(value, (int, float)) else None


@dataclass(frozen=True)
class Response:
    """One decoded server response."""

    id: Any
    ok: bool
    result: Mapping[str, Any] = field(default_factory=dict)
    error_code: Optional[str] = None
    error_message: str = ""

    def raise_for_error(self) -> "Response":
        """Raise :class:`WireError` when this is an error response."""
        if not self.ok:
            raise WireError(self.error_code or "INTERNAL", self.error_message)
        return self


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def encode_frame(body: Mapping[str, Any]) -> bytes:
    """Frame one JSON-ready body: length prefix + UTF-8 JSON."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            "FRAME_TOO_LARGE",
            f"frame body is {len(payload)} bytes (max {MAX_FRAME_BYTES})",
        )
    return HEADER.pack(len(payload)) + payload


def request_frame(
    request_id: int,
    action: str,
    params: Optional[Mapping[str, Any]] = None,
    trace: Optional[Mapping[str, Any]] = None,
) -> bytes:
    """Encode one request; params go through the tagged codec.

    ``trace`` is the optional client trace context (plain JSON — its
    ``id`` is a string, ``sent`` a float — so no codec pass needed).
    """
    body: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "action": action,
        "params": {
            key: encode_value(value) for key, value in (params or {}).items()
        },
    }
    if trace is not None:
        body["trace"] = dict(trace)
    return encode_frame(body)


def response_frame(
    request_id: Any, result: Optional[Mapping[str, Any]] = None
) -> bytes:
    """Encode one success response; result goes through the tagged codec."""
    return encode_frame(
        {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "ok": True,
            "result": {
                key: encode_value(value) for key, value in (result or {}).items()
            },
        }
    )


def error_frame(request_id: Any, code: str, message: str = "") -> bytes:
    """Encode one typed error response."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return encode_frame(
        {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _require_version(body: Mapping[str, Any]) -> None:
    version = body.get("v")
    if version != PROTOCOL_VERSION:
        raise WireError(
            "BAD_VERSION",
            f"protocol version {version!r} (this peer speaks {PROTOCOL_VERSION})",
        )


def parse_request(body: Mapping[str, Any]) -> Request:
    """Validate and decode one request body.

    Raises :class:`WireError` (``BAD_VERSION`` / ``BAD_REQUEST``) on any
    malformed message — the caller answers with the typed error and, for
    ``BAD_REQUEST``, keeps the connection alive.
    """
    _require_version(body)
    request_id = body.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise WireError("BAD_REQUEST", f"request id must be an integer, got {request_id!r}")
    action = body.get("action")
    if action not in ACTIONS:
        raise WireError(
            "BAD_REQUEST",
            f"unknown action {action!r}; expected one of {', '.join(sorted(ACTIONS))}",
        )
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise WireError("BAD_REQUEST", "params must be an object")
    try:
        decoded = {key: decode_value(value) for key, value in params.items()}
    except (TypeError, ValueError, KeyError) as exc:
        raise WireError(
            "BAD_REQUEST", f"undecodable tagged payload: {exc}"
        ) from exc
    trace = body.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise WireError("BAD_REQUEST", "trace context must be an object")
    return Request(id=request_id, action=action, params=decoded, trace=trace)


def parse_response(body: Mapping[str, Any]) -> Response:
    """Validate and decode one response body (client side)."""
    _require_version(body)
    request_id = body.get("id")
    if body.get("ok"):
        result = body.get("result", {})
        if not isinstance(result, dict):
            raise WireError("BAD_REQUEST", "result must be an object")
        return Response(
            id=request_id,
            ok=True,
            result={key: decode_value(value) for key, value in result.items()},
        )
    error = body.get("error")
    if not isinstance(error, dict) or "code" not in error:
        raise WireError("BAD_REQUEST", f"malformed error response: {body!r}")
    return Response(
        id=request_id,
        ok=False,
        error_code=str(error.get("code")),
        error_message=str(error.get("message", "")),
    )


class FrameDecoder:
    """Incremental frame parser for one connection's byte stream.

    Feed arbitrary chunks; iterate the completed message bodies.  The
    decoder never assumes a frame arrives whole: a header may be torn
    across reads, a body may dribble in one byte at a time, and several
    frames may land in a single chunk — all are handled.

    Frame-level violations raise :class:`FrameError`; the decoder is
    then poisoned (the stream offset is unrecoverable) and the caller
    must close the connection after sending the typed error.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False
        #: Total complete messages decoded (for session accounting).
        self.decoded = 0

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every message it completed."""
        return list(self.feed_iter(data))

    def feed_iter(self, data: bytes) -> Iterator[Dict[str, Any]]:
        if self._poisoned:
            raise FrameError("BAD_FRAME", "decoder already poisoned")
        self._buffer.extend(data)
        while True:
            message = self._next()
            if message is None:
                return
            yield message

    def _next(self) -> Optional[Dict[str, Any]]:
        header = HEADER.size
        if len(self._buffer) < header:
            return None
        (length,) = HEADER.unpack_from(self._buffer)
        if length > self.max_frame_bytes:
            self._poisoned = True
            raise FrameError(
                "FRAME_TOO_LARGE",
                f"declared frame of {length} bytes (max {self.max_frame_bytes})",
            )
        if len(self._buffer) < header + length:
            return None
        payload = bytes(self._buffer[header : header + length])
        del self._buffer[: header + length]
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._poisoned = True
            raise FrameError("BAD_FRAME", f"undecodable frame body: {exc}") from exc
        if not isinstance(body, dict):
            self._poisoned = True
            raise FrameError(
                "BAD_FRAME", f"frame body must be an object, got {type(body).__name__}"
            )
        self.decoded += 1
        return body

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)


def split_frames(blob: bytes) -> Tuple[List[Dict[str, Any]], int]:
    """Decode every complete frame in ``blob`` (testing/tooling helper).

    Returns ``(messages, leftover_byte_count)``.
    """
    decoder = FrameDecoder()
    messages = decoder.feed(blob)
    return messages, decoder.pending_bytes
