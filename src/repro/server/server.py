"""The asyncio serving tier: sessions, backpressure, graceful drain.

This is the real wire boundary the paper's model assumes (Sections 1 and
3.3: external clients submit operations to transaction managers).  The
front end accepts client connections, frames requests with
:mod:`repro.server.protocol`, and routes them onto one or more
:class:`~repro.runtime.TransactionManager` instances — the concurrency-
control kernel stays wholly unaware that a network exists, exactly the
layering Malta & Martinez argue for (wire tier strictly outside the
commutativity kernel).

Concurrency model
-----------------

Everything runs on one event loop; the managers are synchronous and are
only ever touched from worker coroutines (plus the inline cleanup paths,
which also run on the loop).  The work queue is therefore *not* a thread
guard — it is the **backpressure** mechanism: each worker owns a bounded
queue, a request is admitted only while the queue is below its
high-water mark, and past it the server answers ``BUSY`` immediately
(``server.busy`` trace event) instead of buffering unboundedly.  Clients
treat BUSY like a lock conflict: back off and retry.

Sharding
--------

With ``workers > 1`` each worker owns a disjoint shard of the objects
(stable CRC32 of the object name).  A transaction is pinned to the shard
owning the *first* object it touches (its *primary*); its
:class:`~repro.server.session.TxnRecord` accumulates every shard it
touches.  Commit timestamps stay globally unique because worker *i* of
*W* issues only timestamps ≡ *i* (mod *W*) — each shard's generator is
monotone, so the Section 3.3 constraint holds per manager, and the
shards' timestamp streams never collide, so a merged trace still
certifies.

Two deployment shapes share this front end:

* **in-loop** (default): each shard is a synchronous
  :class:`~repro.runtime.TransactionManager` touched only from its
  worker coroutine.  Touching a second shard answers ``CROSS_SHARD`` —
  there is no commit protocol between in-loop managers.
* **process pool** (``pool=``): each shard is a *worker OS process*
  (:class:`~repro.server.procpool.ShardProcessPool`) with its own WAL
  under group commit.  The worker coroutine drains its queue into
  *batches* — one pipe round-trip, one group-commit fsync for the whole
  batch — and cross-shard transactions are legal: commit runs
  presumed-abort 2PC across exactly the recorded participants.  A dead
  worker process is respawned (recovering from its WAL, resurrecting
  prepared transactions); the requests and handles it stranded are
  answered ``SHARD_DOWN`` and cleaned up on every participant, never
  leaked.

Graceful drain
--------------

``drain()`` (wired to SIGTERM by ``repro serve``) stops accepting
connections, lets in-flight transactions finish for a grace period,
force-aborts stragglers, answers every admitted request, emits
``server.drain``, and flushes the trace sinks — an accepted request is
never dropped, and the trace file ends with a complete, certifiable run.
"""

from __future__ import annotations

import asyncio
import itertools
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..adts import get_adt
from ..core.errors import (
    LockConflict,
    ProtocolError,
    ReproError,
    TransactionAborted,
    WouldBlock,
)
from ..core.timestamps import TimestampGenerator
from ..protocols import get_protocol
from ..runtime import TransactionManager
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    Request,
    WireError,
    error_frame,
    parse_request,
    response_frame,
)
from .session import Session, SessionError

__all__ = ["ReproServer", "ShardedTimestampGenerator", "shard_for"]


def shard_for(obj: str, workers: int) -> int:
    """The worker shard owning ``obj`` (stable across runs and processes)."""
    if workers <= 1:
        return 0
    return zlib.crc32(obj.encode("utf-8")) % workers


class ShardedTimestampGenerator(TimestampGenerator):
    """Monotone per-shard timestamps, globally unique across shards.

    Worker ``shard`` of ``shards`` issues the integers congruent to
    ``shard`` modulo ``shards``, always strictly above both its own last
    issue and every bound the transaction observed — the Section 3.3
    constraint per manager, with no inter-shard coordination and no
    possibility of two shards committing the same timestamp.
    """

    def __init__(self, shard: int = 0, shards: int = 1):
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} shard(s)")
        self._shard = shard
        self._shards = shards
        self._last = 0
        self._bounds: Dict[str, int] = {}

    @property
    def shard(self) -> int:
        """This generator's stride residue (worker index)."""
        return self._shard

    @property
    def shards(self) -> int:
        """The stride modulus (worker-pool size) timestamps are unique under."""
        return self._shards

    def observe(self, transaction: str, committed_timestamp: Any) -> None:
        current = self._bounds.get(transaction, 0)
        if int(committed_timestamp) > current:
            self._bounds[transaction] = int(committed_timestamp)

    def commit_timestamp(self, transaction: str) -> int:
        floor = max(self._last, self._bounds.get(transaction, 0))
        candidate = floor + 1
        candidate += (self._shard - candidate) % self._shards
        self._last = candidate
        return candidate

    def vote(self, transaction: str) -> int:
        """This shard's 2PC vote: the floor the decided timestamp must clear.

        The §3.3 piggyback — everything committed here, and everything
        ``transaction`` observed here, sits at or below this value, so a
        coordinator deciding strictly above every vote satisfies the
        constraint at every participant.
        """
        return max(self._last, self._bounds.get(transaction, 0))

    def observe_decision(self, timestamp: Any) -> None:
        """Advance past a coordinator-decided timestamp (2PC phase two).

        The decided value lives on the *coordinator's* stride, but this
        shard must never mint below it for transactions that observed the
        committed effects — folding it into ``_last`` keeps the local
        stream above every decision applied here.
        """
        if int(timestamp) > self._last:
            self._last = int(timestamp)

    def forget(self, transaction: str) -> None:
        self._bounds.pop(transaction, None)


class _Connection:
    """One accepted socket: its session, decoder, and write lock."""

    def __init__(self, session: Session, reader, writer):
        self.session = session
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self._write_lock = asyncio.Lock()
        self.open = True

    async def send(self, frame: bytes) -> None:
        """Write one frame; tolerate a peer that vanished mid-response."""
        if not self.open:
            return
        try:
            async with self._write_lock:
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.open = False


class ReproServer:
    """The socket front end over one or more transaction managers.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    workers:
        Number of manager shards (each with its own bounded queue).
    queue_limit:
        High-water mark per worker queue; admissions beyond it answer
        ``BUSY``.
    protocol:
        Conflict-relation protocol name for objects created over the
        wire or via :meth:`create_object` (default ``hybrid``).
    tracer:
        Optional :class:`~repro.obs.TraceBus`; the server emits
        ``server.*`` events and the managers emit the usual ``txn.*`` /
        ``lock.*`` / ``obj.create`` stream through it, so a served run
        is certifiable end-to-end by the :class:`AtomicityChecker`.
    drain_grace:
        Seconds :meth:`drain` waits for in-flight transactions before
        force-aborting them.
    flush_on_drain:
        Sinks to flush/close after the drain completes (e.g. the CLI's
        ``JSONLSink``).
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; when attached,
        the in-band ``stats`` op returns its full snapshot (the caller
        is responsible for also subscribing a ``RegistrySink`` to the
        tracer so the registry actually fills).
    flight:
        Optional :class:`~repro.obs.FlightRecorder`; the ``stats`` op
        reports its status, and :meth:`drain` asks it for a final
        ``drain`` snapshot via its own trigger (it hears the
        ``server.drain`` event through the bus).
    profiler:
        Optional :class:`~repro.obs.SamplingProfiler`; :meth:`start`
        starts it, :meth:`drain` stops it, and the ``stats`` op
        reports its status.  Pair with ``profile_dir`` to dump
        ``profile.folded`` / ``profile.json`` after the drain.
    profile_dir:
        Where the drain-time profile dump goes (requires ``profiler``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        queue_limit: int = 64,
        protocol: str = "hybrid",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        tracer: Any = None,
        drain_grace: float = 5.0,
        flush_on_drain: Sequence[Any] = (),
        ack_capacity: int = 256,
        registry: Any = None,
        flight: Any = None,
        profiler: Any = None,
        profile_dir: Optional[str] = None,
        pool: Any = None,
        pool_batch_limit: int = 64,
    ):
        if pool is not None:
            workers = pool.workers
        if workers < 1:
            raise ValueError("need at least one worker")
        self.host = host
        self.port = port
        self.workers = workers
        self.pool = pool
        self.pool_batch_limit = pool_batch_limit
        self.queue_limit = queue_limit
        self.max_frame_bytes = max_frame_bytes
        self.tracer = tracer
        self.drain_grace = drain_grace
        self._flush_on_drain = list(flush_on_drain)
        self._ack_capacity = ack_capacity
        self.registry = registry
        self.flight = flight
        self.profiler = profiler
        self.profile_dir = profile_dir
        self._started_at: Optional[float] = None
        self._protocol = get_protocol(protocol)
        if pool is not None:
            # Shard state lives in the worker processes; the parent keeps
            # only the catalog and sessions.  Route crash telemetry from
            # the pool supervisor through this server's bus.
            self.managers: List[TransactionManager] = []
            if pool.tracer is None:
                pool.tracer = tracer
        else:
            self.managers = [
                TransactionManager(
                    generator=ShardedTimestampGenerator(index, workers),
                    tracer=tracer,
                )
                for index in range(workers)
            ]
        #: object name -> owning worker index.
        self._catalog: Dict[str, int] = {}
        self._queues: List[asyncio.Queue] = []
        self._worker_tasks: List[asyncio.Task] = []
        self._connections: List[_Connection] = []
        self._session_ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self.draining = False
        self._stopping = False
        self._drained = asyncio.Event()
        #: Coarse server-side tallies (the registry, when attached via a
        #: RegistrySink, derives the same numbers from the events).
        self.stats = {
            "connections": 0,
            "requests": 0,
            "busy": 0,
            "errors": 0,
            "transactions_committed": 0,
            "transactions_aborted": 0,
        }

    # ------------------------------------------------------------------
    # Setup / lifecycle
    # ------------------------------------------------------------------

    def create_object(
        self, name: str, adt_name: str, protocol: Optional[str] = None
    ) -> int:
        """Create ``name`` on its owning shard; returns the worker index."""
        if name in self._catalog:
            raise ValueError(f"object {name!r} already exists")
        if self.pool is not None:
            worker = self.pool.create_object(name, adt_name, protocol)
        else:
            worker = shard_for(name, self.workers)
            spec = get_protocol(protocol) if protocol else self._protocol
            self.managers[worker].create_object(
                name, get_adt(adt_name), protocol=spec
            )
        self._catalog[name] = worker
        return worker

    async def start(self) -> Tuple[str, int]:
        """Bind, spawn the workers, and begin accepting connections."""
        if self.pool is not None:
            self.pool.start()  # spawn (or confirm) the shard processes
            # Adopt objects the shards recovered from their WALs: a
            # restarted server serves its pre-crash catalog immediately.
            for index, names in enumerate(self.pool.catalog()):
                for name in names:
                    self._catalog.setdefault(name, index)
        self._queues = [asyncio.Queue() for _ in range(self.workers)]
        run = self._pool_worker if self.pool is not None else self._worker
        self._worker_tasks = [
            asyncio.ensure_future(run(index)) for index in range(self.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.profiler is not None:
            self.profiler.start()
        self._started_at = asyncio.get_event_loop().time()
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until a :meth:`drain` (e.g. from a signal) completes."""
        await self._drained.wait()

    def install_signal_handlers(self, signals: Sequence[int]) -> None:
        """Trigger a graceful drain on each of ``signals`` (e.g. SIGTERM)."""
        loop = asyncio.get_event_loop()
        for signum in signals:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    async def drain(self) -> Dict[str, int]:
        """Graceful shutdown; see the module docstring for the phases."""
        if self.draining:
            await self._drained.wait()
            return self._drain_report
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_event_loop()
        active_at_start = sum(c.session.active for c in self._connections)
        deadline = loop.time() + self.drain_grace
        while (
            any(c.session.active for c in self._connections)
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.02)
        # Force-abort whatever is still open, inline (the loop owns the
        # managers; the queues only exist for backpressure).
        forced = 0
        for connection in self._connections:
            session = connection.session
            for handle in list(session.transactions):
                record = session.transactions[handle]
                forced += await self._force_abort(handle, record)
                session.close_transaction(handle)
        # No further queue admissions; answer what was already accepted.
        self._stopping = True
        for queue in self._queues:
            queue.put_nowait(None)
        for task in self._worker_tasks:
            await task
        if self.pool is not None:
            # Flush every shard's group-commit WAL and trace sink and
            # join the processes — after this the per-shard trace files
            # are complete and mergeable.
            await asyncio.get_event_loop().run_in_executor(None, self.pool.stop)
        report = {
            "sessions": len(self._connections),
            "finished": max(0, active_at_start - forced),
            "aborted": forced,
        }
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "server.drain",
                sessions=report["sessions"],
                finished=report["finished"],
                aborted=report["aborted"],
            )
        if self.profiler is not None:
            self.profiler.stop()
            if self.profile_dir is not None:
                # Local import: the server takes its obs collaborators
                # as injected Any's; only the dump helper needs a name.
                from ..obs.prof import write_profile

                write_profile(self.profile_dir, profiler=self.profiler)
        for sink in self._flush_on_drain:
            closer = getattr(sink, "close", None) or getattr(sink, "flush", None)
            if closer is not None:
                closer()
        for connection in list(self._connections):
            self._close_connection(connection)
        self._drain_report = report
        self._drained.set()
        return report

    async def aclose(self) -> None:
        """Hard stop for tests: drain with no grace."""
        grace, self.drain_grace = self.drain_grace, 0.0
        try:
            await self.drain()
        finally:
            self.drain_grace = grace

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _close_connection(self, connection: _Connection) -> None:
        if connection.open:
            connection.open = False
            try:
                connection.writer.close()
            except (ConnectionError, RuntimeError, OSError):
                pass

    async def _handle_connection(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = Session(
            next(self._session_ids), peer=peer, ack_capacity=self._ack_capacity
        )
        connection = _Connection(session, reader, writer)
        connection.decoder.max_frame_bytes = self.max_frame_bytes
        self._connections.append(connection)
        self.stats["connections"] += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("server.connect", session=session.name, peer=peer)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = connection.decoder.feed(data)
                except FrameError as exc:
                    # Typed error, then disconnect: the stream offset is
                    # unrecoverable after a framing violation.
                    self.stats["errors"] += 1
                    await connection.send(error_frame(None, exc.code, exc.message))
                    break
                for body in messages:
                    await self._dispatch(connection, body)
                if not connection.open:
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            aborted = await self._abort_session(session)
            self._close_connection(connection)
            if connection in self._connections:
                self._connections.remove(connection)
            session.closed = True
            if tracer is not None:
                tracer.emit(
                    "server.disconnect",
                    session=session.name,
                    requests=session.requests,
                    aborted=aborted,
                )

    async def _abort_session(self, session: Session) -> int:
        """Abort every transaction a vanished connection left behind."""
        aborted = 0
        for handle in list(session.transactions):
            record = session.transactions[handle]
            count = await self._force_abort(handle, record)
            self.stats["transactions_aborted"] += count
            aborted += count
            session.close_transaction(handle)
        return aborted

    async def _force_abort(self, handle: str, record: Any) -> int:
        """Abort ``handle`` wherever it ran; returns 1 when it was live."""
        if self.pool is not None:
            if not record.bound:
                return 0
            await asyncio.get_event_loop().run_in_executor(
                None, self.pool.abort_cross_shard, handle, list(record.participants)
            )
            return 1
        transaction = record.transaction
        if transaction is not None and transaction.is_active:
            self.managers[record.primary].abort(transaction)
            return 1
        return 0

    # ------------------------------------------------------------------
    # Request admission (runs in the connection handler)
    # ------------------------------------------------------------------

    async def _dispatch(self, connection: _Connection, body: Dict[str, Any]) -> None:
        session = connection.session
        try:
            request = parse_request(body)
        except WireError as exc:
            self.stats["errors"] += 1
            await connection.send(error_frame(body.get("id"), exc.code, exc.message))
            return
        session.requests += 1
        action = request.action
        tracer = self.tracer
        if tracer is not None:
            # The decode event carries the client's trace context: its
            # `sent` timestamp against the event's own `ts` measures the
            # client→server wire+queue leg of the end-to-end span.
            tracer.emit(
                "server.decode",
                session=session.name,
                action=action,
                trace=request.trace_id,
                sent=request.sent,
                transaction=request.params.get("transaction"),
            )
        # Inline fast paths: pure bookkeeping, no manager involved.
        if action in ("stats", "health"):
            # Introspection is answered inline, never queued behind
            # shard work — it must stay responsive exactly when the
            # queues are saturated.
            await connection.send(
                response_frame(request.id, self._introspect(action))
            )
            return
        if action == "ping":
            await connection.send(
                response_frame(
                    request.id,
                    {
                        "protocol_version": PROTOCOL_VERSION,
                        "workers": self.workers,
                        "draining": self.draining,
                        "objects": sorted(self._catalog),
                    },
                )
            )
            return
        if action in ("commit", "abort"):
            cached = session.cached_ack(request.id)
            if cached is not None:
                await connection.send(response_frame(request.id, cached))
                return
        if action == "begin":
            if self.draining:
                await connection.send(
                    error_frame(
                        request.id, "SHUTTING_DOWN", "server is draining"
                    )
                )
                return
            handle = session.mint_handle()
            session.open_transaction(handle)
            await connection.send(response_frame(request.id, {"transaction": handle}))
            return
        # Everything else routes to a worker shard.
        try:
            worker = self._route(session, request)
        except WireError as exc:
            self.stats["errors"] += 1
            await connection.send(error_frame(request.id, exc.code, exc.message))
            return
        if worker is None:
            # A completion for a transaction that never touched an
            # object: decide it inline, no manager involved.
            await self._complete_unbound(connection, request)
            return
        queue = self._queues[worker]
        if self._stopping or queue.qsize() >= self.queue_limit:
            if self._stopping:
                await connection.send(
                    error_frame(request.id, "SHUTTING_DOWN", "server is draining")
                )
                return
            self.stats["busy"] += 1
            if tracer is not None:
                tracer.emit(
                    "server.busy",
                    session=session.name,
                    action=action,
                    queue_depth=queue.qsize(),
                    shard=worker,
                    trace=request.trace_id,
                )
            await connection.send(
                error_frame(
                    request.id,
                    "BUSY",
                    f"worker {worker} queue at high-water mark "
                    f"({self.queue_limit}); retry",
                )
            )
            return
        # The admission timestamp anchors the queued phase measured by
        # the worker; None when nobody is listening (keeps the
        # telemetry-off hot path free of clock reads).
        admitted = (
            tracer.clock() if tracer is not None and tracer.active else None
        )
        queue.put_nowait((connection, request, worker, admitted))
        self.stats["requests"] += 1
        if tracer is not None:
            tracer.emit(
                "server.request",
                session=session.name,
                action=action,
                queue_depth=queue.qsize(),
                shard=worker,
                trace=request.trace_id,
            )

    def _introspect(self, action: str) -> Dict[str, Any]:
        """The ``stats`` / ``health`` result body (inline, read-only)."""
        uptime = (
            asyncio.get_event_loop().time() - self._started_at
            if self._started_at is not None
            else None
        )
        health = {
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "workers": self.workers,
            "connections": len(self._connections),
            "objects": len(self._catalog),
            "uptime": uptime,
        }
        if action == "health":
            return health
        result: Dict[str, Any] = dict(health)
        result["server"] = dict(self.stats)
        result["queue_limit"] = self.queue_limit
        result["queues"] = [queue.qsize() for queue in self._queues]
        if self.pool is not None:
            # Parent-side view only: no pipe round-trips from the
            # dispatch path (introspection must answer while the shard
            # pipes are saturated).
            result["pool"] = {
                "workers": self.pool.workers,
                "durability": self.pool.durability,
                "alive": [shard.alive for shard in self.pool.shards],
                "incarnations": [shard.incarnation for shard in self.pool.shards],
            }
        if self.registry is not None:
            result["metrics"] = self.registry.snapshot()
        if self.flight is not None:
            result["flight"] = self.flight.status()
        if self.profiler is not None:
            result["profiler"] = self.profiler.status()
        return result

    def _route(self, session: Session, request: Request) -> Optional[int]:
        """The worker shard for one request (None: decide inline).

        Raises :class:`WireError` for unknown objects/handles and
        cross-shard touches — refused before consuming queue budget.
        """
        action = request.action
        params = request.params
        if action == "create":
            if self.draining:
                raise WireError("SHUTTING_DOWN", "server is draining")
            name = params.get("name")
            if not isinstance(name, str) or not name:
                raise WireError("BAD_REQUEST", "create needs a non-empty name")
            return shard_for(name, self.workers)
        handle = params.get("transaction")
        if not isinstance(handle, str):
            raise WireError("BAD_REQUEST", f"{action} needs a transaction handle")
        try:
            record = session.lookup(handle)
        except SessionError:
            raise WireError(
                "UNKNOWN_TXN", f"no open transaction {handle!r} on this session"
            ) from None
        if action == "invoke":
            obj = params.get("obj")
            if not isinstance(obj, str):
                raise WireError("BAD_REQUEST", "invoke needs an obj name")
            owner = self._catalog.get(obj)
            if owner is None:
                raise WireError("UNKNOWN_OBJECT", f"no managed object {obj!r}")
            if (
                self.pool is None
                and record.primary is not None
                and record.primary != owner
            ):
                # In-loop managers have no commit protocol between them;
                # the pool runs 2PC, so there this touch is legal.
                raise WireError(
                    "CROSS_SHARD",
                    f"transaction {handle!r} is bound to shard {record.primary}; "
                    f"{obj!r} lives on shard {owner} (single-shard transactions"
                    " only)",
                )
            return owner
        # commit / abort run on the primary (the 2PC decider in pool mode).
        return record.primary

    async def _complete_unbound(
        self, connection: _Connection, request: Request
    ) -> None:
        """Commit/abort a transaction that never invoked an operation."""
        await connection.send(self._decide_unbound(connection.session, request))

    def _decide_unbound(self, session: Session, request: Request) -> bytes:
        """Decide an unbound completion inline; returns the response frame."""
        handle = request.params["transaction"]
        session.close_transaction(handle)
        if request.action == "commit":
            result = {"transaction": handle, "timestamp": None, "committed": True}
            self.stats["transactions_committed"] += 1
        else:
            result = {"transaction": handle, "aborted": True}
            self.stats["transactions_aborted"] += 1
        session.record_ack(request.id, result)
        return response_frame(request.id, result)

    # ------------------------------------------------------------------
    # Workers (one bounded queue each)
    # ------------------------------------------------------------------

    async def _worker(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            item = await queue.get()
            if item is None:
                return
            connection, request, worker, admitted = item
            tracer = self.tracer
            timed = tracer is not None and tracer.active
            started = tracer.clock() if timed else 0.0
            frame = self._execute(connection.session, request, worker)
            executed = tracer.clock() if timed else 0.0
            await connection.send(frame)
            if timed:
                responded = tracer.clock()
                tracer.emit(
                    "server.respond",
                    session=connection.session.name,
                    action=request.action,
                    trace=request.trace_id,
                    transaction=request.params.get("transaction"),
                    shard=worker,
                    queued=(
                        max(0.0, started - admitted)
                        if admitted is not None
                        else 0.0
                    ),
                    executing=max(0.0, executed - started),
                    respond=max(0.0, responded - executed),
                )

    def _execute(self, session: Session, request: Request, worker: int) -> bytes:
        """Run one admitted request against its shard's manager."""
        manager = self.managers[worker]
        action = request.action
        params = request.params
        try:
            if action == "create":
                name = params["name"]
                adt_name = params.get("adt", "Counter")
                protocol = params.get("protocol")
                try:
                    shard = self.create_object(name, adt_name, protocol)
                except KeyError as exc:
                    return error_frame(request.id, "BAD_REQUEST", str(exc.args[0]))
                except ValueError as exc:
                    return error_frame(request.id, "BAD_REQUEST", str(exc))
                return response_frame(
                    request.id, {"obj": name, "adt": adt_name, "worker": shard}
                )
            handle = params["transaction"]
            try:
                transaction = session.lookup(handle).transaction
            except SessionError:
                # Completed (or aborted by a disconnect race) since
                # admission — for completions, the ack cache answers.
                cached = session.cached_ack(request.id)
                if cached is not None:
                    return response_frame(request.id, cached)
                return error_frame(
                    request.id, "UNKNOWN_TXN", f"no open transaction {handle!r}"
                )
            if action == "invoke":
                if transaction is None:
                    # First touch pins the transaction to this shard.
                    transaction = manager.begin(handle)
                    session.bind(handle, worker, transaction)
                args = params.get("args", ())
                if not isinstance(args, (tuple, list)):
                    return error_frame(
                        request.id, "BAD_REQUEST", "args must be a sequence"
                    )
                result = manager.invoke(
                    transaction, params["obj"], params["operation"], *tuple(args)
                )
                return response_frame(
                    request.id,
                    {
                        "transaction": handle,
                        "obj": params["obj"],
                        "result": result,
                    },
                )
            if action == "commit":
                timestamp = manager.commit(transaction)
                session.close_transaction(handle)
                payload = {
                    "transaction": handle,
                    "timestamp": timestamp,
                    "committed": True,
                }
                session.record_ack(request.id, payload)
                self.stats["transactions_committed"] += 1
                return response_frame(request.id, payload)
            if action == "abort":
                manager.abort(transaction)
                session.close_transaction(handle)
                payload = {"transaction": handle, "aborted": True}
                session.record_ack(request.id, payload)
                self.stats["transactions_aborted"] += 1
                return response_frame(request.id, payload)
            return error_frame(request.id, "BAD_REQUEST", f"unroutable {action!r}")
        except LockConflict as exc:
            return error_frame(request.id, "CONFLICT", str(exc))
        except WouldBlock as exc:
            return error_frame(request.id, "WOULD_BLOCK", str(exc))
        except TransactionAborted as exc:
            return error_frame(request.id, "ABORTED", str(exc))
        except KeyError as exc:
            return error_frame(request.id, "BAD_REQUEST", f"missing field: {exc}")
        except ProtocolError as exc:
            return error_frame(request.id, "BAD_REQUEST", str(exc))
        except ReproError as exc:  # any other library error: typed, not a crash
            return error_frame(request.id, "INTERNAL", str(exc))
        except Exception as exc:
            # Malformed operation arguments can raise anything out of an
            # ADT spec (e.g. TypeError from Credit(<list>)). Answer INTERNAL
            # rather than letting the exception escape: an escape kills the
            # shard's worker task, stranding every queued request and
            # hanging drain forever.
            self.stats["errors"] += 1
            return error_frame(
                request.id, "INTERNAL", f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------
    # Process-pool workers (one bounded queue each, batched pipe calls)
    # ------------------------------------------------------------------

    async def _pool_worker(self, index: int) -> None:
        """Serve one shard's queue by *batching*: each drain of the queue
        becomes one pipe round-trip, and the shard worker makes the whole
        batch durable under a single group-commit fsync.  Concurrency is
        what fills batches — under load the queue is never empty, so the
        fsync cost amortises across every queued request."""
        queue = self._queues[index]
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is None:
                return
            batch = [item]
            while len(batch) < self.pool_batch_limit:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stopping = True
                    break
                batch.append(extra)
            await self._serve_pool_batch(index, batch)

    async def _serve_pool_batch(
        self, index: int, batch: List[Tuple[Any, Any, int, Any]]
    ) -> None:
        from .procpool import ShardDown

        loop = asyncio.get_event_loop()
        tracer = self.tracer
        plans: List[Tuple[Any, List[Dict[str, Any]], Callable]] = []
        direct: List[Tuple[Any, bytes]] = []
        cross: List[Tuple[Any, Callable]] = []
        for item in batch:
            connection, request, _worker, _admitted = item
            kind, payload = self._plan_pool(connection.session, request, index)
            if kind == "frame":
                direct.append((item, payload))
            elif kind == "cross":
                cross.append((item, payload))
            else:
                plans.append((item, payload[0], payload[1]))
        for item, frame in direct:
            await self._respond_pool(item, frame, None, None)
        if plans:
            ops = [op for _, plan_ops, _ in plans for op in plan_ops]
            timed = tracer is not None and tracer.active
            started = tracer.clock() if timed else None
            try:
                replies = await loop.run_in_executor(
                    None, self.pool.shards[index].call, ops
                )
            except ShardDown:
                await self._shard_down(index, [item for item, _, _ in plans])
            else:
                executed = tracer.clock() if timed else None
                offset = 0
                for item, plan_ops, finisher in plans:
                    chunk = replies[offset : offset + len(plan_ops)]
                    offset += len(plan_ops)
                    await self._respond_pool(item, finisher(chunk), started, executed)
        for item, thunk in cross:
            timed = tracer is not None and tracer.active
            started = tracer.clock() if timed else None
            frame = await thunk()
            executed = tracer.clock() if timed else None
            await self._respond_pool(item, frame, started, executed)

    async def _respond_pool(
        self,
        item: Tuple[Any, Any, int, Any],
        frame: bytes,
        started: Optional[float],
        executed: Optional[float],
    ) -> None:
        connection, request, worker, admitted = item
        await connection.send(frame)
        tracer = self.tracer
        if tracer is not None and tracer.active:
            responded = tracer.clock()
            begun = started if started is not None else responded
            done = executed if executed is not None else begun
            tracer.emit(
                "server.respond",
                session=connection.session.name,
                action=request.action,
                trace=request.trace_id,
                transaction=request.params.get("transaction"),
                shard=worker,
                queued=(
                    max(0.0, begun - admitted) if admitted is not None else 0.0
                ),
                executing=max(0.0, done - begun),
                respond=max(0.0, responded - done),
            )

    def _plan_pool(
        self, session: Session, request: Request, index: int
    ) -> Tuple[str, Any]:
        """Translate one admitted request into shard-worker ops.

        Returns ``("frame", bytes)`` for requests answerable without the
        shard, ``("ops", (ops, finisher))`` for batched single-shard
        work (``finisher(replies) -> frame`` consumes ``len(ops)``
        replies), or ``("cross", thunk)`` for multi-shard completions
        (``await thunk() -> frame`` runs 2PC off-loop).
        """
        action = request.action
        params = request.params
        rid = request.id
        if action == "create":
            name = params.get("name")
            if name in self._catalog:
                return (
                    "frame",
                    error_frame(rid, "BAD_REQUEST", f"object {name!r} already exists"),
                )
            adt_name = params.get("adt", "Counter")
            create_op = {
                "op": "create",
                "name": name,
                "adt": adt_name,
                "protocol": params.get("protocol"),
            }

            def finish_create(replies: List[Dict[str, Any]]) -> bytes:
                reply = replies[0]
                if "error" in reply:
                    return error_frame(rid, "BAD_REQUEST", reply["message"])
                self._catalog[name] = index
                return response_frame(
                    rid, {"obj": name, "adt": adt_name, "worker": index}
                )

            return ("ops", ([create_op], finish_create))
        handle = params.get("transaction")
        try:
            record = session.lookup(handle)
        except SessionError:
            cached = session.cached_ack(rid)
            if cached is not None:
                return ("frame", response_frame(rid, cached))
            return (
                "frame",
                error_frame(rid, "UNKNOWN_TXN", f"no open transaction {handle!r}"),
            )
        if action == "invoke":
            args = params.get("args", ())
            if not isinstance(args, (tuple, list)):
                return (
                    "frame",
                    error_frame(rid, "BAD_REQUEST", "args must be a sequence"),
                )
            ops: List[Dict[str, Any]] = []
            if record.touch(index):
                begin_op: Dict[str, Any] = {"op": "begin", "name": handle}
                if record.primary != index:
                    # A non-primary participant: begin quietly — the
                    # transaction's one loud txn.begin came from its
                    # primary, and the checker rejects duplicates.
                    begin_op["quiet"] = True
                ops.append(begin_op)
            obj = params.get("obj")
            ops.append(
                {
                    "op": "invoke",
                    "txn": handle,
                    "obj": obj,
                    "operation": params.get("operation"),
                    "args": tuple(args),
                }
            )

            def finish_invoke(replies: List[Dict[str, Any]]) -> bytes:
                reply = replies[-1]
                if "error" in reply:
                    return error_frame(rid, reply["error"], reply["message"])
                return response_frame(
                    rid, {"transaction": handle, "obj": obj, "result": reply["ok"]}
                )

            return ("ops", (ops, finish_invoke))
        if not record.bound:
            return ("frame", self._decide_unbound(session, request))
        if action == "commit":
            if record.cross_shard:
                return ("cross", lambda: self._commit_cross(session, request, record))
            commit_op = {"op": "commit", "txn": handle}

            def finish_commit(replies: List[Dict[str, Any]]) -> bytes:
                reply = replies[0]
                if "error" in reply:
                    return error_frame(rid, reply["error"], reply["message"])
                payload = {
                    "transaction": handle,
                    "timestamp": reply["ok"],
                    "committed": True,
                }
                session.record_ack(rid, payload)
                session.close_transaction(handle)
                self.stats["transactions_committed"] += 1
                return response_frame(rid, payload)

            return ("ops", ([commit_op], finish_commit))
        if action == "abort":
            if record.cross_shard:
                return ("cross", lambda: self._abort_cross(session, request, record))
            abort_op = {"op": "abort", "txn": handle}

            def finish_abort(replies: List[Dict[str, Any]]) -> bytes:
                payload = {"transaction": handle, "aborted": True}
                session.record_ack(rid, payload)
                session.close_transaction(handle)
                self.stats["transactions_aborted"] += 1
                return response_frame(rid, payload)

            return ("ops", ([abort_op], finish_abort))
        return ("frame", error_frame(rid, "BAD_REQUEST", f"unroutable {action!r}"))

    async def _commit_cross(
        self, session: Session, request: Request, record: Any
    ) -> bytes:
        """Commit a multi-shard transaction: presumed-abort 2PC off-loop."""
        handle = request.params["transaction"]
        reply = await asyncio.get_event_loop().run_in_executor(
            None,
            self.pool.commit_cross_shard,
            handle,
            list(record.participants),
            record.primary,
        )
        if "error" in reply:
            # The 2PC already aborted the transaction on every
            # participant; the handle is finished, not leaked.
            session.close_transaction(handle)
            self.stats["transactions_aborted"] += 1
            return error_frame(request.id, reply["error"], reply["message"])
        payload = {"transaction": handle, "timestamp": reply["ok"], "committed": True}
        session.record_ack(request.id, payload)
        session.close_transaction(handle)
        self.stats["transactions_committed"] += 1
        return response_frame(request.id, payload)

    async def _abort_cross(
        self, session: Session, request: Request, record: Any
    ) -> bytes:
        """Abort a multi-shard transaction on every participant."""
        handle = request.params["transaction"]
        await asyncio.get_event_loop().run_in_executor(
            None, self.pool.abort_cross_shard, handle, list(record.participants)
        )
        payload = {"transaction": handle, "aborted": True}
        session.record_ack(request.id, payload)
        session.close_transaction(handle)
        self.stats["transactions_aborted"] += 1
        return response_frame(request.id, payload)

    async def _shard_down(self, index: int, items: List[Any]) -> int:
        """A worker process died mid-batch: answer, clean up, respawn.

        Every in-flight request gets a typed ``SHARD_DOWN`` answer (never
        stranded), every handle that touched the dead shard is aborted on
        its surviving participants and closed (never leaked — the dead
        shard's own active transactions died with its volatile state;
        prepared ones are resurrected from the WAL and resolved by the
        respawn), and the shard is respawned, recovered, and put back in
        rotation.  Returns the number of handles cleaned up.
        """
        loop = asyncio.get_event_loop()
        for item in items:
            connection, request, _worker, _admitted = item
            self.stats["errors"] += 1
            await connection.send(
                error_frame(
                    request.id,
                    "SHARD_DOWN",
                    f"shard {index} worker died; its active transactions are"
                    " presumed aborted",
                )
            )
        cleaned = 0
        for connection in self._connections:
            session = connection.session
            for handle in list(session.transactions):
                record = session.transactions[handle]
                if index not in record.participants:
                    continue
                survivors = [p for p in record.participants if p != index]
                if survivors:
                    await loop.run_in_executor(
                        None, self.pool.abort_cross_shard, handle, survivors
                    )
                session.close_transaction(handle)
                self.stats["transactions_aborted"] += 1
                cleaned += 1
        await loop.run_in_executor(None, self.pool.respawn, index)
        return cleaned
