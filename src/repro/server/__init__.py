"""The serving tier: a real socket boundary over the runtime managers.

The concurrency-control kernel (machines, managers, protocols) is pure
and synchronous; this package is where the outside world attaches:

* :mod:`~repro.server.protocol` — the versioned, length-prefixed JSON
  wire protocol (payloads through the tagged trace codec);
* :mod:`~repro.server.session` — per-connection transaction handles and
  the idempotent commit-ack cache;
* :mod:`~repro.server.server` — the asyncio front end: sessions,
  bounded work queues with BUSY backpressure, sharded managers, and
  graceful drain;
* :mod:`~repro.server.procpool` — shared-nothing shard *processes*:
  one WAL-backed manager per OS process under group commit, cross-shard
  2PC, supervised respawn with recovery;
* :mod:`~repro.server.client` — sync and asyncio client libraries;
* :mod:`~repro.server.bench` — the closed-/open-loop load harness
  behind ``repro bench serve``;
* :mod:`~repro.server.top` — the curses-free live view behind
  ``repro top``, rendered from the in-band ``stats`` op.

See ``docs/serving.md`` for the protocol and lifecycle reference.
"""

from .client import AsyncClient, SyncClient
from .procpool import ShardDown, ShardProcess, ShardProcessPool
from .protocol import (
    ACTIONS,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    Request,
    Response,
    WireError,
    encode_frame,
    error_frame,
    parse_request,
    parse_response,
    request_frame,
    response_frame,
)
from .server import ReproServer, ShardedTimestampGenerator, shard_for
from .session import Session, SessionError, TxnRecord
from .top import render_top, run_top

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ACTIONS",
    "ERROR_CODES",
    "WireError",
    "FrameError",
    "Request",
    "Response",
    "FrameDecoder",
    "encode_frame",
    "request_frame",
    "response_frame",
    "error_frame",
    "parse_request",
    "parse_response",
    "Session",
    "SessionError",
    "TxnRecord",
    "ReproServer",
    "ShardedTimestampGenerator",
    "shard_for",
    "ShardProcess",
    "ShardProcessPool",
    "ShardDown",
    "SyncClient",
    "AsyncClient",
    "render_top",
    "run_top",
]
