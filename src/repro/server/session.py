"""Per-connection session state: transaction handles and idempotent acks.

A session is the server-side shadow of one client connection.  It owns

* the connection's *transaction handles* — short opaque strings minted at
  ``begin`` and mapped to the live :class:`repro.runtime.Transaction`
  (plus the worker shard it is bound to);
* the *completion-ack cache* — the protocol's answer to the classic
  "commit ack lost in flight" problem.  A ``commit`` or ``abort``
  decision is made exactly once; the response body is cached under the
  request id, and a retry of the *same* request id replays the cached
  ack instead of re-executing (the transaction is long gone from the
  manager by then).  The cache is bounded: acks are retired FIFO once
  ``ack_capacity`` decisions are remembered, which is plenty — a sane
  client retries only its most recent unacknowledged commit.

The module is deliberately pure (no sockets, no clocks): it is the part
of the serving tier that stays under the full REP104/REP106 lint
discipline, and it is unit-testable without an event loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

__all__ = ["Session", "SessionError"]


class SessionError(KeyError):
    """An unknown transaction handle was presented to a session."""


class Session:
    """State for one client connection.

    Parameters
    ----------
    session_id:
        Server-assigned, unique for the server's lifetime; embedded in
        transaction names so traces from thousands of connections never
        collide.
    peer:
        Printable remote address (trace payloads only).
    ack_capacity:
        How many completed commit/abort decisions to remember for
        idempotent retry.
    """

    __slots__ = (
        "session_id",
        "peer",
        "transactions",
        "requests",
        "_next_txn",
        "_acks",
        "_ack_capacity",
        "closed",
    )

    def __init__(self, session_id: int, peer: str = "?", ack_capacity: int = 256):
        self.session_id = session_id
        self.peer = peer
        #: handle -> (worker index or None, live Transaction or None).
        #: The worker binding is lazy: a transaction is pinned to the
        #: shard owning the first object it touches.
        self.transactions: Dict[str, Tuple[Optional[int], Any]] = {}
        #: Requests admitted (not refused BUSY) on this session.
        self.requests = 0
        self._next_txn = 0
        self._acks: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        self._ack_capacity = ack_capacity
        self.closed = False

    @property
    def name(self) -> str:
        """The session's name as it appears in trace payloads."""
        return f"s{self.session_id}"

    # -- transaction handles -------------------------------------------

    def mint_handle(self) -> str:
        """A fresh transaction handle (globally unique via the session id)."""
        self._next_txn += 1
        return f"s{self.session_id}.t{self._next_txn}"

    def open_transaction(self, handle: str) -> None:
        """Register a handle minted by :meth:`mint_handle` as open."""
        self.transactions[handle] = (None, None)

    def bind(self, handle: str, worker: int, transaction: Any) -> None:
        """Pin ``handle`` to the worker shard that began it."""
        if handle not in self.transactions:
            raise SessionError(handle)
        self.transactions[handle] = (worker, transaction)

    def lookup(self, handle: str) -> Tuple[Optional[int], Any]:
        """The (worker, transaction) binding for ``handle``.

        Raises :class:`SessionError` for handles this session never
        minted (or already completed) — the server answers UNKNOWN_TXN.
        """
        try:
            return self.transactions[handle]
        except KeyError:
            raise SessionError(handle) from None

    def close_transaction(self, handle: str) -> None:
        """Drop a completed transaction's handle."""
        self.transactions.pop(handle, None)

    @property
    def active(self) -> int:
        """Open transaction handles on this session."""
        return len(self.transactions)

    # -- idempotent completion acks ------------------------------------

    def cached_ack(self, request_id: int) -> Optional[Dict[str, Any]]:
        """The remembered response for a completed decision, if any."""
        return self._acks.get(request_id)

    def record_ack(self, request_id: int, result: Dict[str, Any]) -> None:
        """Remember a commit/abort decision's response for retries."""
        self._acks[request_id] = result
        while len(self._acks) > self._ack_capacity:
            self._acks.popitem(last=False)
