"""Per-connection session state: transaction handles and idempotent acks.

A session is the server-side shadow of one client connection.  It owns

* the connection's *transaction handles* — short opaque strings minted at
  ``begin`` and mapped to a :class:`TxnRecord`: the live
  :class:`repro.runtime.Transaction` (in-loop mode), the *primary* shard
  (first touch) and the full *participant set* of shards the transaction
  has touched.  Single-shard transactions have one participant; in
  process-pool mode a transaction may touch several, and commit then
  runs two-phase commit across exactly the recorded participants — the
  record is the coordinator's worklist, so completion (or a worker
  death) can always clean up every shard that ever heard of the
  transaction, leaking nothing;
* the *completion-ack cache* — the protocol's answer to the classic
  "commit ack lost in flight" problem.  A ``commit`` or ``abort``
  decision is made exactly once; the response body is cached under the
  request id, and a retry of the *same* request id replays the cached
  ack instead of re-executing (the transaction is long gone from the
  manager by then).  The cache is bounded: acks are retired FIFO once
  ``ack_capacity`` decisions are remembered, which is plenty — a sane
  client retries only its most recent unacknowledged commit.

The module is deliberately pure (no sockets, no clocks): it is the part
of the serving tier that stays under the full REP104/REP106 lint
discipline, and it is unit-testable without an event loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional

__all__ = ["Session", "SessionError", "TxnRecord"]


class SessionError(KeyError):
    """An unknown transaction handle was presented to a session."""


class TxnRecord:
    """One open handle: where the transaction runs and what it touched.

    ``primary`` is the shard that first-touch began the transaction (the
    2PC coordinator-side decider in pool mode); ``participants`` lists
    every shard it has touched, in touch order, primary first.  An
    unbound record (``primary is None``) belongs to a transaction that
    has not invoked anything yet — its completion is decided inline.
    ``transaction`` carries the live runtime object only in in-loop
    mode; the process pool keeps transactions inside the shard workers.
    """

    __slots__ = ("primary", "participants", "transaction")

    def __init__(self) -> None:
        self.primary: Optional[int] = None
        self.participants: List[int] = []
        self.transaction: Any = None

    @property
    def bound(self) -> bool:
        """Has the transaction touched any shard yet?"""
        return self.primary is not None

    @property
    def cross_shard(self) -> bool:
        """Has the transaction touched more than one shard?"""
        return len(self.participants) > 1

    def touch(self, worker: int) -> bool:
        """Record a touch of ``worker``; True when the shard is new."""
        if self.primary is None:
            self.primary = worker
        if worker in self.participants:
            return False
        self.participants.append(worker)
        return True


class Session:
    """State for one client connection.

    Parameters
    ----------
    session_id:
        Server-assigned, unique for the server's lifetime; embedded in
        transaction names so traces from thousands of connections never
        collide.
    peer:
        Printable remote address (trace payloads only).
    ack_capacity:
        How many completed commit/abort decisions to remember for
        idempotent retry.
    """

    __slots__ = (
        "session_id",
        "peer",
        "transactions",
        "requests",
        "_next_txn",
        "_acks",
        "_ack_capacity",
        "closed",
    )

    def __init__(self, session_id: int, peer: str = "?", ack_capacity: int = 256):
        self.session_id = session_id
        self.peer = peer
        #: handle -> TxnRecord (primary shard, participant set, live txn).
        #: The binding is lazy: a transaction is pinned to the shard
        #: owning the first object it touches.
        self.transactions: Dict[str, TxnRecord] = {}
        #: Requests admitted (not refused BUSY) on this session.
        self.requests = 0
        self._next_txn = 0
        self._acks: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        self._ack_capacity = ack_capacity
        self.closed = False

    @property
    def name(self) -> str:
        """The session's name as it appears in trace payloads."""
        return f"s{self.session_id}"

    # -- transaction handles -------------------------------------------

    def mint_handle(self) -> str:
        """A fresh transaction handle (globally unique via the session id)."""
        self._next_txn += 1
        return f"s{self.session_id}.t{self._next_txn}"

    def open_transaction(self, handle: str) -> TxnRecord:
        """Register a handle minted by :meth:`mint_handle` as open."""
        record = TxnRecord()
        self.transactions[handle] = record
        return record

    def bind(self, handle: str, worker: int, transaction: Any) -> TxnRecord:
        """Record that ``handle`` touched ``worker`` (first touch pins it)."""
        record = self.lookup(handle)
        record.touch(worker)
        if transaction is not None:
            record.transaction = transaction
        return record

    def lookup(self, handle: str) -> TxnRecord:
        """The :class:`TxnRecord` for ``handle``.

        Raises :class:`SessionError` for handles this session never
        minted (or already completed) — the server answers UNKNOWN_TXN.
        """
        try:
            return self.transactions[handle]
        except KeyError:
            raise SessionError(handle) from None

    def close_transaction(self, handle: str) -> None:
        """Drop a completed transaction's handle."""
        self.transactions.pop(handle, None)

    @property
    def active(self) -> int:
        """Open transaction handles on this session."""
        return len(self.transactions)

    # -- idempotent completion acks ------------------------------------

    def cached_ack(self, request_id: int) -> Optional[Dict[str, Any]]:
        """The remembered response for a completed decision, if any."""
        return self._acks.get(request_id)

    def record_ack(self, request_id: int, result: Dict[str, Any]) -> None:
        """Remember a commit/abort decision's response for retries."""
        self._acks[request_id] = result
        while len(self._acks) > self._ack_capacity:
            self._acks.popitem(last=False)
