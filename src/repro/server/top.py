"""``repro top``: a curses-free live view over the in-band ``stats`` op.

Polls a running server's ``stats`` endpoint on an interval and prints a
compact refresh — uptime, queue depths, commit/abort/BUSY *rates*
(deltas between consecutive snapshots, not lifetime totals), latency
quantiles rebuilt from the snapshot's histogram buckets
(:meth:`~repro.obs.registry.Histogram.from_snapshot`), the hottest
conflict pairs, and the flight recorder's status.  No terminal control
beyond a separator line, so the output works under ``watch``, a pipe,
or a dumb CI log just as well as a tty.

The rendering is a pure function of two snapshots
(:func:`render_top`), so tests drive it without a socket or a clock;
only :func:`run_top` touches the network and ``time.sleep``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from ..obs.registry import Histogram
from .client import SyncClient

__all__ = ["render_top", "run_top"]

#: Snapshot histogram names worth a quantile row, in display order.
_LATENCY_ROWS = (
    ("server.client_wire", "client->server"),
    ("server.queued", "shard queue"),
    ("server.executing", "execute"),
    ("server.respond_write", "respond"),
)


def _rate(
    current: Dict[str, Any],
    previous: Optional[Dict[str, Any]],
    key: str,
    elapsed: Optional[float],
) -> str:
    """``delta/s`` between snapshots; ``—`` until two snapshots exist.

    A rate needs two samples — rendering the lifetime total on tick one
    (as this used to) reads as an absurd per-second figure the moment
    the server has any history.
    """
    if previous is None or not elapsed or elapsed <= 0:
        return "—"
    now = current.get(key, 0)
    delta = max(0, now - previous.get(key, 0))
    return f"{delta / elapsed:.1f}/s"


def _quantile(histogram: Histogram, q: float) -> str:
    value = histogram.quantile(q)
    if value == float("inf"):
        return ">max"
    return f"{value * 1000.0:.2f}ms"


def render_top(
    snapshot: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    elapsed: Optional[float] = None,
) -> str:
    """One refresh frame from a ``stats`` result (pure; testable)."""
    lines: List[str] = []
    uptime = snapshot.get("uptime")
    lines.append(
        f"repro top — {snapshot.get('status', '?')}  "
        f"workers={snapshot.get('workers')}  "
        f"connections={snapshot.get('connections')}  "
        f"objects={snapshot.get('objects')}  "
        + (f"up {uptime:.1f}s" if uptime is not None else "up ?")
    )
    queues = snapshot.get("queues") or []
    limit = snapshot.get("queue_limit")
    if queues:
        depths = " ".join(
            f"shard{index}:{depth}" for index, depth in enumerate(queues)
        )
        lines.append(f"queues (limit {limit}): {depths}")
    server = snapshot.get("server") or {}
    prev_server = (previous or {}).get("server") if previous else None
    lines.append(
        "rates: "
        f"requests {_rate(server, prev_server, 'requests', elapsed)}  "
        f"commits {_rate(server, prev_server, 'transactions_committed', elapsed)}  "
        f"aborts {_rate(server, prev_server, 'transactions_aborted', elapsed)}  "
        f"busy {_rate(server, prev_server, 'busy', elapsed)}  "
        f"errors {_rate(server, prev_server, 'errors', elapsed)}"
    )
    histograms = (snapshot.get("metrics") or {}).get("histograms") or {}
    phase_p99: List[tuple] = []
    for name, label in _LATENCY_ROWS:
        payload = histograms.get(name)
        if not payload:
            continue
        histogram = Histogram.from_snapshot(name, payload)
        if not histogram.total:
            continue
        lines.append(
            f"latency {label:>14s}: "
            f"p50 {_quantile(histogram, 0.5)}  "
            f"p99 {_quantile(histogram, 0.99)}  "
            f"n={histogram.total}"
        )
        phase_p99.append((histogram.quantile(0.99), label))
    if phase_p99:
        # The live critical-path hint: the phase whose p99 dominates is
        # where the tail goes (offline attribution: `repro analyze`).
        p99, label = max(phase_p99)
        lines.append(
            f"critical path: {label} gates the tail "
            f"(p99 {'>max' if p99 == float('inf') else f'{p99 * 1e3:.2f}ms'})"
        )
    counters = (snapshot.get("metrics") or {}).get("counters") or {}
    prev_counters = (
        ((previous or {}).get("metrics") or {}).get("counters") or {}
    )
    blocked = sorted(
        (
            (value - prev_counters.get(name, 0.0), name)
            for name, value in counters.items()
            if name.startswith("lock.blocked_time[")
            and value - prev_counters.get(name, 0.0) > 0
        ),
        reverse=True,
    )[:3] if previous is not None else []  # deltas need two snapshots too
    if blocked:
        rendered = "  ".join(
            f"{name[len('lock.blocked_time['):-1]}={delta * 1e3:.2f}ms"
            for delta, name in blocked
        )
        lines.append(f"contention (blocked time this tick): {rendered}")
    pairs = sorted(
        (
            (value, name)
            for name, value in counters.items()
            if name.startswith("lock.conflict[")
        ),
        reverse=True,
    )[:3]
    if pairs:
        rendered = "  ".join(
            f"{name[len('lock.conflict['):-1]}={value:g}"
            for value, name in pairs
        )
        lines.append(f"hottest conflicts: {rendered}")
    flight = snapshot.get("flight")
    if flight:
        lines.append(
            f"flight: {flight.get('dumps', 0)} dump(s)"
            + (
                f" (last: {flight.get('last_reason')})"
                if flight.get("last_reason")
                else ""
            )
            + f"  ring {flight.get('retained')}/{flight.get('seen')} seen"
            f"  {flight.get('dropped_events', 0)} beyond window"
        )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    write: Callable[[str], None] = print,
) -> int:
    """Poll ``stats`` every ``interval`` seconds and print each frame.

    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly);
    a count makes it scriptable (``repro top --iterations 1`` is a
    one-shot status check).  Returns the number of frames printed.
    """
    frames = 0
    previous: Optional[Dict[str, Any]] = None
    last_poll: Optional[float] = None
    with SyncClient(host, port) as client:
        try:
            while iterations is None or frames < iterations:
                now = time.monotonic()
                snapshot = client.stats()
                elapsed = (
                    now - last_poll if last_poll is not None else None
                )
                if frames:
                    write("-" * 64)
                write(render_top(snapshot, previous, elapsed))
                frames += 1
                previous, last_poll = snapshot, now
                if iterations is not None and frames >= iterations:
                    break
                time.sleep(interval)
        except KeyboardInterrupt:
            pass
    return frames
