"""Shared-nothing shard workers: one OS process per shard.

The paper's multi-site model (Sections 1 and 3.3) is shared-nothing by
construction: each site owns its objects, generates timestamps locally,
and learns cross-site decisions from the commit protocol's messages.
This module gives the serving tier that shape for real.  Each shard is
a child *process* hosting its own :class:`~repro.runtime.TransactionManager`
over a :class:`~repro.server.server.ShardedTimestampGenerator` (stride
``shard`` mod ``shards`` — coordination-free global uniqueness), its own
:class:`~repro.recovery.wal.FileWAL` under group commit, and its own
trace file; the parent process routes work over pipes and never touches
a machine directly.

Message protocol (one pipe per child, strictly request/reply)::

    parent -> child   ("batch", [op, op, ...])
    child  -> parent  ("ok", [reply, reply, ...])
    parent -> child   ("stop",)        child flushes, acks, exits
    child  -> parent  ("fatal", text)  unrecoverable startup failure

Each ``op`` is a dict with an ``"op"`` key; each reply is either
``{"ok": ...}`` or ``{"error": CODE, "message": text}``.  The child
executes the whole batch, then flushes its group-commit WAL **once**,
then replies — so every acknowledged commit is durable, and the batch
shares one fsync (the group-commit contract; fsyncs/txn ≈ 1/depth).

Single-shard transactions run entirely inside one child (the ``txn``
fast path: begin + invokes + commit in one message).  Cross-shard
transactions run the classic presumed-abort 2PC from
:mod:`repro.distributed` — PREPARE force-writes the intentions and
returns the shard's timestamp floor as its vote, the first-touch
(primary) shard decides strictly above every vote *on its own stride*,
and the decision is retransmitted until every participant acks, through
worker death and recovery if need be.  A respawned child rebuilds
itself from its WAL via :func:`repro.recovery.recover_manager` (which
refuses a resized stride), resurrects prepared transactions with their
locks, and the pool resolves them by querying the surviving shards for
the decision — commit if any shard logged it, presumed abort otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import threading
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import ReproError
from .server import ShardedTimestampGenerator, shard_for

__all__ = ["ShardDown", "ShardProcess", "ShardProcessPool"]


class ShardDown(ReproError):
    """The shard's worker process is dead (or died mid-request)."""


# ----------------------------------------------------------------------
# Child process
# ----------------------------------------------------------------------


def _open_wal(spec: Dict[str, Any]):
    """The child's log stack: FileWAL, group-commit-wrapped unless asked
    for per-append durability.  Returns ``(base, wal)``."""
    from ..recovery.wal import FileWAL, GroupCommitWAL

    base = FileWAL(pathlib.Path(spec["data_dir"]))
    if spec["durability"] == "append":
        return base, base
    return base, GroupCommitWAL(base, max_batch=int(spec["max_batch"]))


def _child_state(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Build (or recover) the shard's manager, WAL, tracer, and maps."""
    from ..recovery.recovery import recover_manager
    from ..runtime import TransactionManager

    site = f"shard{spec['shard']}"
    generator = ShardedTimestampGenerator(spec["shard"], spec["shards"])
    tracer = None
    sink = None
    if spec.get("trace_path"):
        from ..obs import JSONLSink, TraceBus

        tracer = TraceBus()
        sink = tracer.subscribe(JSONLSink(spec["trace_path"]))
    base, wal = _open_wal(spec)
    decided: Dict[str, int] = {}
    if len(base):
        manager, _report = recover_manager(
            wal, tracer=tracer, generator=generator, site=site
        )
        for record in base.records():
            if record["kind"] == "commit":
                from ..recovery.wal import decode_value

                timestamp = decode_value(record["ts"])
                if isinstance(timestamp, int):
                    decided[record["txn"]] = timestamp
    else:
        manager = TransactionManager(
            generator=generator, wal=wal, tracer=tracer, site=site
        )
    return {
        "spec": spec,
        "site": site,
        "manager": manager,
        "generator": generator,
        "base": base,
        "wal": wal,
        "tracer": tracer,
        "sink": sink,
        "decided": decided,
        "committed": 0,
        "aborted": 0,
    }


def _execute_op(state: Dict[str, Any], op: Dict[str, Any]) -> Dict[str, Any]:
    """Run one op against the child's manager; never raises."""
    from ..adts import get_adt
    from ..core.errors import (
        LockConflict,
        ProtocolError,
        TransactionAborted,
        WouldBlock,
    )
    from ..protocols import get_protocol

    manager = state["manager"]
    generator = state["generator"]
    decided = state["decided"]
    kind = op["op"]
    try:
        if kind == "txn":
            # Fast path: a whole single-shard transaction in one message.
            transaction = manager.begin(op["name"])
            try:
                results = [
                    manager.invoke(transaction, obj, operation, *args)
                    for obj, operation, args in op["steps"]
                ]
            except (LockConflict, WouldBlock):
                manager.abort(transaction)
                state["aborted"] += 1
                raise
            timestamp = manager.commit(transaction)
            decided[op["name"]] = timestamp
            state["committed"] += 1
            return {"ok": timestamp, "results": results}
        if kind == "create":
            protocol = get_protocol(op.get("protocol") or state["spec"]["protocol"])
            manager.create_object(op["name"], get_adt(op["adt"]), protocol=protocol)
            return {"ok": op["name"]}
        if kind == "begin":
            manager.begin(op["name"], _quiet=bool(op.get("quiet")))
            return {"ok": op["name"]}
        if kind == "stats":
            base = state["base"]
            wal = state["wal"]
            return {
                "ok": {
                    "shard": state["spec"]["shard"],
                    "shards": state["spec"]["shards"],
                    "incarnation": state["spec"]["incarnation"],
                    "committed": state["committed"],
                    "aborted": state["aborted"],
                    "objects": len(manager.objects),
                    "prepared": manager.prepared_transactions(),
                    "wal_appends": base.appends,
                    "wal_syncs": base.syncs,
                    "wal_records": len(base),
                    "batches": getattr(wal, "batches", None),
                    "batched_records": getattr(wal, "batched_records", None),
                }
            }
        if kind == "catalog":
            return {"ok": sorted(manager.objects)}
        if kind == "prepared":
            return {"ok": manager.prepared_transactions()}
        if kind == "decision":
            timestamp = decided.get(op["txn"])
            if timestamp is None:
                return {"ok": {"outcome": "unknown"}}
            return {"ok": {"outcome": "commit", "ts": timestamp}}
        if kind == "snapshot":
            return {"ok": manager.object(op["obj"]).snapshot()}
        if kind == "crash":
            # Fault injection: die without flushing — staged group-commit
            # records and all volatile state are lost, as in a real crash.
            os._exit(17)
        # The remaining ops address a live transaction by name.
        name = op["txn"]
        transaction = manager.transaction(name)
        if kind == "invoke":
            if transaction is None:
                return {"error": "UNKNOWN_TXN", "message": f"no transaction {name!r}"}
            result = manager.invoke(
                transaction, op["obj"], op["operation"], *tuple(op.get("args", ()))
            )
            return {"ok": result}
        if kind == "commit":
            if transaction is None:
                return {"error": "UNKNOWN_TXN", "message": f"no transaction {name!r}"}
            timestamp = manager.commit(transaction)
            decided[name] = timestamp
            state["committed"] += 1
            return {"ok": timestamp}
        if kind == "abort":
            if transaction is not None:
                manager.abort(transaction)
                state["aborted"] += 1
            return {"ok": None}  # unknown: already aborted (presumed abort)
        if kind == "prepare":
            if transaction is None:
                return {"error": "NO_VOTE", "message": f"no transaction {name!r}"}
            return {"ok": manager.prepare(transaction)}
        if kind == "decide":
            # Primary role: mint the decision strictly above every vote,
            # on this shard's stride, and commit locally.
            if transaction is None:
                return {"error": "UNKNOWN_TXN", "message": f"no transaction {name!r}"}
            generator.observe_decision(max(op["votes"]))
            timestamp = generator.commit_timestamp(name)
            manager.commit_prepared(transaction, timestamp)
            decided[name] = timestamp
            state["committed"] += 1
            return {"ok": timestamp}
        if kind == "apply_commit":
            timestamp = int(op["ts"])
            if transaction is None:
                if decided.get(name) == timestamp:
                    return {"ok": timestamp}  # decision retransmit: idempotent
                return {"error": "UNKNOWN_TXN", "message": f"no transaction {name!r}"}
            manager.commit_prepared(transaction, timestamp)
            decided[name] = timestamp
            state["committed"] += 1
            return {"ok": timestamp}
        return {"error": "BAD_REQUEST", "message": f"unknown op {kind!r}"}
    except LockConflict as exc:
        return {"error": "CONFLICT", "message": str(exc)}
    except WouldBlock as exc:
        return {"error": "WOULD_BLOCK", "message": str(exc)}
    except TransactionAborted as exc:
        return {"error": "ABORTED", "message": str(exc)}
    except KeyError as exc:
        detail = exc.args[0] if exc.args else exc
        return {"error": "BAD_REQUEST", "message": str(detail)}
    except (ProtocolError, ValueError) as exc:
        return {"error": "BAD_REQUEST", "message": str(exc)}
    except ReproError as exc:
        return {"error": "INTERNAL", "message": str(exc)}
    except Exception as exc:  # an escape would kill the shard: answer typed
        return {"error": "INTERNAL", "message": f"{type(exc).__name__}: {exc}"}


def _shard_main(conn, spec: Dict[str, Any]) -> None:
    """Child entry point: serve batches until told to stop."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates
    try:
        state = _child_state(spec)
    except Exception as exc:
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    wal = state["wal"]
    flush = getattr(wal, "flush", None)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "stop":
            if flush is not None:
                flush()
            if state["sink"] is not None:
                state["sink"].close()
            conn.send(("ok", []))
            break
        replies = [_execute_op(state, op) for op in message[1]]
        # Group commit: the whole batch becomes durable under one fsync
        # *before* any reply is acknowledged.
        if flush is not None:
            flush()
        if state["sink"] is not None:
            state["sink"].flush()
        conn.send(("ok", replies))
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ShardProcess:
    """Parent-side handle for one shard worker process."""

    def __init__(
        self,
        shard: int,
        shards: int,
        data_dir: pathlib.Path,
        trace_dir: Optional[pathlib.Path],
        protocol: str,
        durability: str,
        max_batch: int,
        context,
    ):
        self.shard = shard
        self.shards = shards
        self.data_dir = data_dir
        self.trace_dir = trace_dir
        self.protocol = protocol
        self.durability = durability
        self.max_batch = max_batch
        self.incarnation = 0
        self._context = context
        self._process = None
        self._conn = None
        self._lock = threading.Lock()
        #: Trace files written by past and present incarnations, oldest
        #: first — the merge feed for certification.
        self.trace_paths: List[pathlib.Path] = []

    @property
    def name(self) -> str:
        return f"shard{self.shard}"

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def spawn(self) -> None:
        """Start (or restart) the worker; a restart recovers from the WAL."""
        self.incarnation += 1
        trace_path = None
        if self.trace_dir is not None:
            # One file per incarnation: JSONL sinks open "w", so a restart
            # must not clobber the previous life's events.
            path = self.trace_dir / f"{self.name}.{self.incarnation}.jsonl"
            self.trace_paths.append(path)
            trace_path = str(path)
        spec = {
            "shard": self.shard,
            "shards": self.shards,
            "data_dir": str(self.data_dir),
            "trace_path": trace_path,
            "protocol": self.protocol,
            "durability": self.durability,
            "max_batch": self.max_batch,
            "incarnation": self.incarnation,
        }
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_main, args=(child_conn, spec), daemon=True
        )
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn

    def _drain_fatal(self) -> None:
        """Surface a buffered fatal startup announcement, if any.

        A child that fails to start sends ``("fatal", text)`` and exits;
        the message stays buffered in the pipe after the death, so a
        caller racing the exit must still see the cause (e.g. a stride
        mismatch on recovery), not a bare "not running".
        """
        try:
            if self._conn is not None and self._conn.poll(0):
                reply = self._conn.recv()
                if reply[0] == "fatal":
                    raise ShardDown(f"{self.name} failed to start: {reply[1]}")
        except (EOFError, OSError):
            pass

    def call(self, ops: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Send one batch and wait for its replies (thread-safe).

        Raises :class:`ShardDown` when the worker is dead or dies
        mid-request, and :class:`ShardDown` with the child's message when
        startup failed fatally (e.g. a stride mismatch on recovery).
        """
        with self._lock:
            if self._conn is None:
                raise ShardDown(f"{self.name} is not running")
            if not self.alive:
                self._drain_fatal()
                raise ShardDown(f"{self.name} is not running")
            try:
                self._conn.send(("batch", list(ops)))
                reply = self._conn.recv()
            except (EOFError, OSError):
                # Reap the corpse before raising: until the child is
                # joined, ``is_alive()`` can still report True, and a
                # subsequent ``respawn`` would mistake the zombie for a
                # healthy worker and skip the restart.
                if self._process is not None:
                    self._process.join(timeout=5.0)
                self._drain_fatal()
                raise ShardDown(f"{self.name} died mid-request") from None
        if reply[0] == "fatal":
            raise ShardDown(f"{self.name} failed to start: {reply[1]}")
        return reply[1]

    def single(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """One-op convenience batch."""
        return self.call([op])[0]

    def stop(self) -> None:
        """Flush and join the worker (no-op when already dead)."""
        with self._lock:
            if self._conn is None:
                return
            if self.alive:
                try:
                    self._conn.send(("stop",))
                    self._conn.recv()
                except (EOFError, OSError):
                    pass
            self._conn.close()
            self._conn = None
        if self._process is not None:
            self._process.join(timeout=5.0)
            self._process = None

    def kill(self) -> None:
        """Fault injection: SIGKILL, losing all volatile state."""
        if self._process is not None:
            self._process.kill()
            self._process.join(timeout=5.0)


class ShardProcessPool:
    """A fixed-size pool of shard worker processes plus their catalog.

    Objects are partitioned by the same stable hash the in-loop server
    uses (:func:`~repro.server.server.shard_for`), so a catalog built
    against the pool agrees with one built against in-loop workers.
    ``durability`` selects group commit (``"group"``, the default: one
    fsync per pipe batch) or per-append durability (``"append"``: one
    fsync per record — the pre-group-commit baseline, kept for
    benchmarking the difference honestly).
    """

    def __init__(
        self,
        workers: int,
        data_dir,
        trace_dir=None,
        protocol: str = "hybrid",
        durability: str = "group",
        max_batch: int = 256,
        start_method: Optional[str] = None,
        tracer: Any = None,
    ):
        if workers < 1:
            raise ValueError("need at least one shard worker")
        if durability not in ("group", "append"):
            raise ValueError(f"unknown durability mode {durability!r}")
        self.workers = workers
        self.data_dir = pathlib.Path(data_dir)
        self.trace_dir = pathlib.Path(trace_dir) if trace_dir is not None else None
        self.protocol = protocol
        self.durability = durability
        self.tracer = tracer
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        context = multiprocessing.get_context(start_method)
        self._respawn_lock = threading.Lock()
        self.shards: List[ShardProcess] = []
        for shard in range(workers):
            shard_dir = self.data_dir / f"shard{shard}"
            shard_dir.mkdir(parents=True, exist_ok=True)
            if self.trace_dir is not None:
                self.trace_dir.mkdir(parents=True, exist_ok=True)
            self.shards.append(
                ShardProcess(
                    shard,
                    workers,
                    shard_dir,
                    self.trace_dir,
                    protocol,
                    durability,
                    max_batch,
                    context,
                )
            )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn every worker (restarts recover from their WALs)."""
        for shard in self.shards:
            if not shard.alive:
                shard.spawn()

    def stop(self) -> None:
        """Flush and join every worker."""
        for shard in self.shards:
            shard.stop()

    def respawn(self, index: int) -> List[str]:
        """Restart a dead worker and resolve its prepared transactions.

        Emits ``site.crash`` (hard) for the lost incarnation, spawns a
        fresh one (which replays its WAL — committed intentions redone,
        prepared transactions back with their locks), then queries the
        other shards for each prepared transaction's decision: commit if
        any shard logged one, presumed abort otherwise.  Returns the
        prepared transaction names that were resolved.
        """
        shard = self.shards[index]
        with self._respawn_lock:
            if shard.alive:
                return []  # another caller already brought it back
            if self.tracer is not None:
                self.tracer.emit("site.crash", site=shard.name, hard=True)
            shard.spawn()
            return self.resolve_prepared(index)

    def resolve_prepared(self, index: int) -> List[str]:
        """Deliver the pending verdict for a recovered shard's prepared set."""
        shard = self.shards[index]
        prepared = shard.single({"op": "prepared"})["ok"]
        for name in prepared:
            timestamp = None
            for other in self.shards:
                if other.shard == index or not other.alive:
                    continue
                verdict = other.single({"op": "decision", "txn": name})["ok"]
                if verdict["outcome"] == "commit":
                    timestamp = verdict["ts"]
                    break
            if timestamp is not None:
                shard.single({"op": "apply_commit", "txn": name, "ts": timestamp})
            else:
                # No shard logged a commit: the coordinator never decided
                # (or decided abort) — presumed abort.
                shard.single({"op": "abort", "txn": name})
        return list(prepared)

    # -- routing -------------------------------------------------------

    def shard_of(self, obj: str) -> int:
        """The worker index owning ``obj`` (same hash as the in-loop tier)."""
        return shard_for(obj, self.workers)

    def create_object(
        self, name: str, adt_name: str, protocol: Optional[str] = None
    ) -> int:
        """Create ``name`` on its owning shard; returns the worker index."""
        index = self.shard_of(name)
        reply = self.shards[index].single(
            {"op": "create", "name": name, "adt": adt_name, "protocol": protocol}
        )
        if "error" in reply:
            raise ValueError(reply["message"])
        return index

    def catalog(self) -> List[List[str]]:
        """Per-shard object names — including ones *recovered* from the
        WALs, which the parent has never seen create requests for."""
        return [shard.single({"op": "catalog"})["ok"] for shard in self.shards]

    def stats(self) -> List[Dict[str, Any]]:
        """Per-shard child statistics (skipping dead workers)."""
        out = []
        for shard in self.shards:
            try:
                out.append(shard.single({"op": "stats"})["ok"])
            except ShardDown:
                out.append({"shard": shard.shard, "down": True})
        return out

    # -- cross-shard 2PC (the distributed coordinator, pipes for wires) --

    def commit_cross_shard(
        self, name: str, participants: Sequence[int], primary: int
    ) -> Dict[str, Any]:
        """Run presumed-abort 2PC for ``name`` across ``participants``.

        Phase one collects every shard's vote (its timestamp floor,
        force-written with the intentions); any refusal aborts everywhere.
        Phase two decides ``max(votes) < ts`` on the primary's stride and
        retransmits the decision until each participant acks — through a
        worker death, by respawning it (recovery resurrects the prepared
        transaction) and re-applying.  Returns ``{"ok": ts}`` or an error
        reply shaped like the child ones.
        """
        votes: List[int] = []
        voted: List[int] = []
        for index in sorted(set(participants)):
            try:
                reply = self.shards[index].single({"op": "prepare", "txn": name})
            except ShardDown:
                reply = {"error": "NO_VOTE", "message": f"shard{index} is down"}
            if "error" in reply:
                self.abort_cross_shard(name, voted)
                return reply
            votes.append(int(reply["ok"]))
            voted.append(index)
        try:
            decided = self.shards[primary].single(
                {"op": "decide", "txn": name, "votes": votes}
            )
        except ShardDown:
            # The primary died between prepare and decide: no commit
            # record exists anywhere, so the outcome is presumed abort.
            # Its own prepared entry resolves the same way on respawn.
            self.abort_cross_shard(name, [i for i in voted if i != primary])
            return {"error": "ABORTED", "message": f"shard{primary} died deciding"}
        if "error" in decided:
            self.abort_cross_shard(name, [i for i in voted if i != primary])
            return decided
        timestamp = int(decided["ok"])
        for index in voted:
            if index == primary:
                continue
            self._deliver_commit(index, name, timestamp)
        return {"ok": timestamp}

    def _deliver_commit(self, index: int, name: str, timestamp: int) -> None:
        """Retransmit a commit decision until the participant acks it."""
        while True:
            try:
                self.shards[index].single(
                    {"op": "apply_commit", "txn": name, "ts": timestamp}
                )
                return
            except ShardDown:
                # Respawn recovers the prepared transaction (its vote and
                # intentions are on the shard's stable log) and
                # resolve_prepared may already find the primary's commit
                # record; the retried apply is then an idempotent ack.
                self.respawn(index)

    def abort_cross_shard(self, name: str, participants: Sequence[int]) -> None:
        """Deliver an abort everywhere it ran; dead shards presume it."""
        for index in sorted(set(participants)):
            try:
                self.shards[index].single({"op": "abort", "txn": name})
            except ShardDown:
                continue  # presumed abort on recovery
