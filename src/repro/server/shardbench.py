"""Shard-process scaling benchmark: group commit vs a durable-per-append
baseline.

Drives :class:`~repro.server.procpool.ShardProcessPool` directly — one
feeder thread per shard submitting pipe batches of fast-path
transactions — and reports four things:

* **baseline** — one worker, per-append durability (``durability=
  "append"``): every WAL record is its own fsync, the pre-group-commit
  world.  This is the honest denominator for the headline speedup.
* **scaling** — worker sweep under group commit at a fixed submission
  depth.  The headline ``speedup_vs_baseline`` is the top worker count's
  sustained txn/s over the baseline row.  On a single-core host the
  *same-configuration* worker scaling is flat to negative (the workers
  multiplex one CPU); the speedup comes from batching durable writes,
  which is exactly what the row pair is designed to show.  The same
  submission pattern drives every row — only the worker count and the
  durability mode vary.
* **depth sweep** — fsyncs per transaction as the submission depth
  grows, measured from the shard WAL's own counters.  Group commit's
  contract is ``fsyncs/txn < 1`` from depth 4 up.
* **cross-shard** — sequential two-shard 2PC commits through the
  coordinator path, reported separately (prepares are force-written, so
  these are strictly more expensive than the fast path).

Timing phases run untraced.  A separate certification phase reruns the
mix on a traced pool, merges the per-shard JSONL traces with the
coordinator's, writes ``shard_trace.jsonl`` next to the artifact, and
replays the merged history through the
:class:`~repro.obs.AtomicityChecker` — the numbers ship only alongside
the oracle's verdict.  The artifact (``BENCH_shard.json``) is validated
by ``benchmarks/bench_schema.py``.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..obs import AtomicityChecker, JSONLSink, read_jsonl
from .procpool import ShardProcessPool

__all__ = [
    "run_shard_bench",
    "render_shard_summary",
    "shard_headline",
    "SCHEMA_VERSION",
    "SPEEDUP_FLOOR",
    "SMOKE_SPEEDUP_FLOOR",
]

SCHEMA_VERSION = 1
REPO_ROOT = Path(__file__).resolve().parents[3]

ADT_NAME = "Account"
OPERATION = "Credit"
OPS_PER_TXN = 2

#: Worker counts for the group-commit scaling sweep (the last one is the
#: headline row).
SCALING_WORKERS = (1, 2, 4)
SMOKE_SCALING_WORKERS = (1, 4)

#: Pipe-batch submission depths for the fsync-amortisation sweep.
DEPTHS = (1, 2, 4, 16, 64)
SMOKE_DEPTHS = (1, 4, 16)

#: Submission depth for the baseline and scaling rows.
BATCH_DEPTH = 16

#: Acceptance floors for the headline speedup, keyed on smoke mode: the
#: committed artifact must show >= 2.5x over the durable-per-append
#: baseline; the CI smoke run gets headroom for noisy shared runners.
SPEEDUP_FLOOR = 2.5
SMOKE_SPEEDUP_FLOOR = 1.5

#: ``fsyncs/txn`` must drop below one from this submission depth up.
AMORTISED_DEPTH = 4


def _feed(
    shard: Any,
    objects: Sequence[str],
    count: int,
    depth: int,
    committed: List[int],
) -> None:
    """One feeder thread: submit ``count`` fast-path transactions to one
    shard in pipe batches of ``depth``."""
    done = 0
    sent = 0
    while sent < count:
        size = min(depth, count - sent)
        ops = []
        for offset in range(size):
            index = sent + offset
            steps = [(objects[index % len(objects)], OPERATION, (1,))] * OPS_PER_TXN
            ops.append(
                {"op": "txn", "name": f"{shard.name}-t{index}", "steps": steps}
            )
        replies = shard.call(ops)
        done += sum(1 for reply in replies if "ok" in reply)
        sent += size
    committed.append(done)


def _wal_counters(pool: ShardProcessPool) -> Dict[str, int]:
    totals = {"wal_appends": 0, "wal_syncs": 0}
    for stats in pool.stats():
        totals["wal_appends"] += stats["wal_appends"]
        totals["wal_syncs"] += stats["wal_syncs"]
    return totals


def _drive(
    pool: ShardProcessPool, txns_per_worker: int, depth: int
) -> Dict[str, Any]:
    """Run the disjoint-shard workload; returns the row's stats dict."""
    objects: Dict[int, List[str]] = {index: [] for index in range(pool.workers)}
    probe = 0
    while any(len(names) < 2 for names in objects.values()):
        name = f"acct-{probe}"
        home = pool.shard_of(name)
        if len(objects[home]) < 2:
            objects[home].append(name)
            pool.create_object(name, ADT_NAME)
        probe += 1
    before = _wal_counters(pool)
    committed: List[int] = []
    threads = [
        threading.Thread(
            target=_feed,
            args=(shard, objects[index], txns_per_worker, depth, committed),
        )
        for index, shard in enumerate(pool.shards)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    after = _wal_counters(pool)
    transactions = sum(committed)
    fsyncs = after["wal_syncs"] - before["wal_syncs"]
    return {
        "transactions": transactions,
        "elapsed_seconds": elapsed,
        "txn_per_second": transactions / elapsed,
        "fsyncs": fsyncs,
        "fsyncs_per_txn": fsyncs / transactions if transactions else 0.0,
    }


def _timed_pool_row(
    root: Path,
    tag: str,
    workers: int,
    durability: str,
    txns_per_worker: int,
    depth: int,
) -> Dict[str, Any]:
    """Boot a fresh untraced pool, drive it, and tear it down."""
    pool = ShardProcessPool(
        workers, root / tag, durability=durability
    )
    pool.start()
    try:
        stats = _drive(pool, txns_per_worker, depth)
    finally:
        pool.stop()
    return {
        "workers": workers,
        "durability": durability,
        "batch_depth": depth,
        **stats,
    }


def _cross_shard_phase(
    root: Path, transactions: int
) -> Dict[str, Any]:
    """Sequential two-shard 2PC commits through the coordinator path."""
    pool = ShardProcessPool(2, root / "cross")
    pool.start()
    try:
        names = _two_shard_objects(pool)
        committed = 0
        started = time.perf_counter()
        for index in range(transactions):
            txn = f"cross-t{index}"
            pool.shards[0].single({"op": "begin", "name": txn})
            pool.shards[1].single({"op": "begin", "name": txn, "quiet": True})
            for home in (0, 1):
                pool.shards[home].single(
                    {
                        "op": "invoke",
                        "txn": txn,
                        "obj": names[home],
                        "operation": OPERATION,
                        "args": (1,),
                    }
                )
            reply = pool.commit_cross_shard(txn, [0, 1], primary=index % 2)
            committed += 1 if "ok" in reply else 0
        elapsed = time.perf_counter() - started
    finally:
        pool.stop()
    return {
        "workers": 2,
        "transactions": committed,
        "elapsed_seconds": elapsed,
        "txn_per_second": committed / elapsed,
    }


def _two_shard_objects(pool: ShardProcessPool) -> Dict[int, str]:
    names: Dict[int, str] = {}
    probe = 0
    while len(names) < pool.workers:
        candidate = f"acct-x{probe}"
        home = pool.shard_of(candidate)
        if home not in names:
            names[home] = candidate
            pool.create_object(candidate, ADT_NAME)
        probe += 1
    return names


def _certification_phase(
    root: Path,
    trace_out: Path,
    txns_per_worker: int,
    cross_transactions: int,
) -> Dict[str, Any]:
    """Rerun the mix traced, merge the shard traces, and certify."""
    pool = ShardProcessPool(2, root / "certify", trace_dir=root / "traces")
    pool.start()
    try:
        _drive(pool, txns_per_worker, BATCH_DEPTH)
        names = _two_shard_objects(pool)
        for index in range(cross_transactions):
            txn = f"certify-x{index}"
            pool.shards[0].single({"op": "begin", "name": txn})
            pool.shards[1].single({"op": "begin", "name": txn, "quiet": True})
            for home in (0, 1):
                pool.shards[home].single(
                    {
                        "op": "invoke",
                        "txn": txn,
                        "obj": names[home],
                        "operation": OPERATION,
                        "args": (1,),
                    }
                )
            pool.commit_cross_shard(txn, [0, 1], primary=index % 2)
    finally:
        pool.stop()
    events = []
    for shard in pool.shards:
        for path in shard.trace_paths:
            events.extend(read_jsonl(str(path)))
    events.sort(key=lambda event: event.ts)
    with JSONLSink(str(trace_out)) as merged:
        for event in events:
            merged(event)
    report = AtomicityChecker().replay(events).report()
    return {
        "verdict": report["verdict"],
        "ok": report["ok"],
        "events": report["events"],
        "transactions": report["transactions"],
        "violations": report["violations"],
    }


def run_shard_bench(
    smoke: bool = False,
    output_dir: Path = REPO_ROOT,
    trace_path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run the shard benchmark; writes and returns ``BENCH_shard.json``.

    The merged certification trace lands at ``trace_path`` (default:
    ``shard_trace.jsonl`` next to the artifact) so ``repro check
    --trace-file`` can re-certify the same run out of band.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    if trace_path is None:
        trace_path = output_dir / "shard_trace.jsonl"
    txns_per_worker = 300 if smoke else 2000
    sweep_txns = 200 if smoke else 1000
    cross_txns = 50 if smoke else 300
    certify_txns = 60 if smoke else 200
    worker_levels = SMOKE_SCALING_WORKERS if smoke else SCALING_WORKERS
    depths = SMOKE_DEPTHS if smoke else DEPTHS

    with tempfile.TemporaryDirectory(prefix="shardbench-") as scratch:
        root = Path(scratch)
        baseline = _timed_pool_row(
            root, "baseline", 1, "append", txns_per_worker, BATCH_DEPTH
        )
        scaling = [
            _timed_pool_row(
                root, f"group-w{workers}", workers, "group",
                txns_per_worker, BATCH_DEPTH,
            )
            for workers in worker_levels
        ]
        depth_sweep = [
            _timed_pool_row(
                root, f"depth-{depth}", 1, "group", sweep_txns, depth
            )
            for depth in depths
        ]
        cross_shard = _cross_shard_phase(root, cross_txns)
        certification = _certification_phase(
            root, Path(trace_path), certify_txns, cross_txns // 4 or 1
        )

    top = scaling[-1]
    speedup = top["txn_per_second"] / baseline["txn_per_second"]
    result = {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "adt": ADT_NAME,
        "config": {
            "ops_per_txn": OPS_PER_TXN,
            "txns_per_worker": txns_per_worker,
            "batch_depth": BATCH_DEPTH,
        },
        "baseline": baseline,
        "scaling": scaling,
        "speedup_vs_baseline": speedup,
        "depth_sweep": depth_sweep,
        "cross_shard": cross_shard,
        "certification": certification,
    }

    if not certification["ok"]:
        raise AssertionError(
            f"sharded run failed certification: {certification}"
        )
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    if speedup < floor:
        raise AssertionError(
            f"group commit at {top['workers']} worker(s) is only "
            f"{speedup:.2f}x the per-append baseline (floor {floor}x)"
        )
    amortised = [
        row for row in depth_sweep if row["batch_depth"] >= AMORTISED_DEPTH
    ]
    if not amortised or min(row["fsyncs_per_txn"] for row in amortised) >= 1.0:
        raise AssertionError(
            f"group commit failed to amortise: fsyncs/txn at depth >= "
            f"{AMORTISED_DEPTH} never dropped below 1.0"
        )
    (output_dir / "BENCH_shard.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    return result


def shard_headline(result: Dict[str, Any]) -> Dict[str, Any]:
    """One run's headline numbers for the bench history log."""
    top = result["scaling"][-1]
    deepest = result["depth_sweep"][-1]
    return {
        "kind": "shard",
        "smoke": result.get("smoke", False),
        "workers": top["workers"],
        "txn_per_second": top["txn_per_second"],
        "speedup_vs_baseline": result["speedup_vs_baseline"],
        "fsyncs_per_txn": deepest["fsyncs_per_txn"],
        "verdict": result["certification"]["verdict"],
    }


def render_shard_summary(result: Dict[str, Any]) -> str:
    """A terminal-friendly digest of one ``BENCH_shard.json`` payload."""
    baseline = result["baseline"]
    lines = [
        f"shard bench: {result['config']['txns_per_worker']} txn/worker, "
        f"{result['config']['ops_per_txn']} op(s)/txn, submission depth "
        f"{result['config']['batch_depth']}",
        f"baseline (1 worker, durable per append): "
        f"{baseline['txn_per_second']:>9,.0f} txn/s  "
        f"{baseline['fsyncs_per_txn']:.2f} fsync/txn",
        "group commit scaling (workers: txn/s, fsync/txn, vs baseline):",
    ]
    for row in result["scaling"]:
        ratio = row["txn_per_second"] / baseline["txn_per_second"]
        lines.append(
            f"  {row['workers']:>3}: {row['txn_per_second']:>9,.0f} txn/s  "
            f"{row['fsyncs_per_txn']:.2f} fsync/txn  {ratio:.2f}x"
        )
    lines.append(
        f"headline: {result['speedup_vs_baseline']:.2f}x vs the "
        "per-append baseline"
    )
    lines.append("depth sweep (submission depth: txn/s, fsync/txn):")
    for row in result["depth_sweep"]:
        lines.append(
            f"  {row['batch_depth']:>3}: {row['txn_per_second']:>9,.0f} "
            f"txn/s  {row['fsyncs_per_txn']:.2f} fsync/txn"
        )
    cross = result["cross_shard"]
    lines.append(
        f"cross-shard 2PC: {cross['txn_per_second']:>9,.0f} txn/s "
        f"({cross['transactions']} sequential two-shard commits)"
    )
    cert = result["certification"]
    lines.append(
        f"certification: {cert['verdict']!r} over {cert['events']} events, "
        f"{cert['transactions']['committed']} committed /"
        f" {cert['transactions']['aborted']} aborted"
    )
    return "\n".join(lines)
