"""Closed- and open-loop load generation against the serving tier.

Boots a :class:`~repro.server.ReproServer` and drives it with real
socket clients on the same event loop:

* **closed loop** — *N* connections each running transactions
  back-to-back; sweeping *N* maps the throughput/latency curve as
  concurrency grows (the classic saturation plot);
* **open loop** — transactions *arrive* at a fixed offered rate
  regardless of completion, so queueing delay shows up in the latency
  tail instead of being hidden by client back-off (closed-loop
  coordinated omission).

Latency is measured per transaction, begin-to-commit-ack, from the
*scheduled arrival* in the open-loop case.  Every run ends with a
graceful drain, and the JSONL trace the server emitted is replayed
through the :class:`~repro.obs.AtomicityChecker` — the throughput
numbers are only reported alongside the oracle's verdict that the served
run was hybrid atomic.  The artifact (``BENCH_serve.json``) is validated
by ``benchmarks/bench_schema.py``.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..obs import (
    WIRE_LATENCY_BUCKETS,
    AtomicityChecker,
    FlightRecorder,
    MetricsRegistry,
    RegistrySink,
    SamplingProfiler,
    SpanBuilder,
    TraceBus,
    contention_profile,
    critical_path,
    write_profile,
)
from ..obs.sinks import JSONLSink, read_jsonl
from .client import AsyncClient
from .protocol import WireError
from .server import ReproServer, shard_for

__all__ = [
    "run_serve_bench",
    "render_summary",
    "headline",
    "compare_artifacts",
    "render_comparison",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Closed-loop concurrency sweep (the smoke variant still covers the
#: 64-connection acceptance floor).
CLOSED_LOOP_CLIENTS = (1, 8, 32, 64, 128)
SMOKE_CLOSED_LOOP_CLIENTS = (8, 64)

#: Open-loop offered rates (transactions per second).
OPEN_LOOP_RATES = (100.0, 400.0)
SMOKE_OPEN_LOOP_RATES = (150.0,)

ADT_NAME = "Account"
OPERATION = "Credit"
#: Hot-object transactions debit instead of credit: Credit/Credit
#: commutes under the hybrid relation (queueing only), but Debit-Ok
#: holds DEBIT_LOCK, and DEBIT_LOCK × DEBIT_LOCK *conflicts* — so the
#: hot object exercises the real conflict path and the contention
#: profiler has something to attribute.  The hot account is seeded with
#: a large opening balance so every debit lands in its Ok outcome.
HOT_OPERATION = "Debit"
HOT_SEED_BALANCE = 10**9
OPS_PER_TXN = 2
#: Every HOT_EVERY-th transaction runs entirely against one shared
#: object, so the sweep exercises real lock contention.
HOT_EVERY = 8


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


def _txn_stats(latencies: List[float], elapsed: float) -> Dict[str, float]:
    ranked = sorted(latencies)
    return {
        "transactions": len(latencies),
        "elapsed_seconds": elapsed,
        "txn_per_second": len(latencies) / elapsed,
        "p50_latency_ms": _percentile(ranked, 0.50) * 1e3,
        "p99_latency_ms": _percentile(ranked, 0.99) * 1e3,
    }


async def _one_transaction(
    client: AsyncClient,
    obj: str,
    ops_per_txn: int,
    counters: Dict[str, int],
    operation: str = OPERATION,
) -> bool:
    """Run one single-operation transaction; True if it committed."""
    try:
        handle = await client.begin()
    except WireError as exc:
        counters[exc.code] = counters.get(exc.code, 0) + 1
        return False
    try:
        for _ in range(ops_per_txn):
            await client.invoke(handle, obj, operation, 1)
        await client.commit(handle)
    except WireError as exc:
        counters[exc.code] = counters.get(exc.code, 0) + 1
        try:
            await client.abort(handle)
        except (WireError, ConnectionError):
            pass
        return False
    return True


async def _closed_loop_client(
    host: str,
    port: int,
    client_index: int,
    objects: Sequence[str],
    hot_object: str,
    duration: float,
    ops_per_txn: int,
    latencies: List[float],
    counters: Dict[str, int],
) -> int:
    """One closed-loop connection: transactions back-to-back until the
    deadline.  Returns the number of committed transactions."""
    client = await AsyncClient.connect(host, port)
    loop = asyncio.get_event_loop()
    deadline = loop.time() + duration
    committed = 0
    iteration = 0
    own = objects[client_index % len(objects)]
    try:
        while loop.time() < deadline:
            hot = iteration % HOT_EVERY == HOT_EVERY - 1
            obj = hot_object if hot else own
            operation = HOT_OPERATION if hot else OPERATION
            started = loop.time()
            if await _one_transaction(
                client, obj, ops_per_txn, counters, operation
            ):
                latencies.append(loop.time() - started)
                committed += 1
            iteration += 1
    finally:
        await client.aclose()
    return committed


async def _closed_loop_level(
    host: str,
    port: int,
    clients: int,
    objects: Sequence[str],
    hot_object: str,
    duration: float,
    ops_per_txn: int,
) -> Dict[str, Any]:
    latencies: List[float] = []
    counters: Dict[str, int] = {}
    loop = asyncio.get_event_loop()
    started = loop.time()
    committed = await asyncio.gather(
        *(
            _closed_loop_client(
                host, port, index, objects, hot_object,
                duration, ops_per_txn, latencies, counters,
            )
            for index in range(clients)
        )
    )
    elapsed = loop.time() - started
    return {
        "clients": clients,
        "committed": sum(committed),
        "errors": dict(sorted(counters.items())),
        "stats": _txn_stats(latencies, elapsed),
    }


async def _open_loop_arrival(
    client: AsyncClient,
    obj: str,
    scheduled: float,
    ops_per_txn: int,
    latencies: List[float],
    counters: Dict[str, int],
) -> int:
    loop = asyncio.get_event_loop()
    if await _one_transaction(client, obj, ops_per_txn, counters):
        # Latency from the *scheduled* arrival: queueing delay counts.
        latencies.append(loop.time() - scheduled)
        return 1
    return 0


async def _open_loop_level(
    host: str,
    port: int,
    rate: float,
    duration: float,
    pool_size: int,
    objects: Sequence[str],
    ops_per_txn: int,
) -> Dict[str, Any]:
    pool = [await AsyncClient.connect(host, port) for _ in range(pool_size)]
    loop = asyncio.get_event_loop()
    latencies: List[float] = []
    counters: Dict[str, int] = {}
    arrivals = max(1, int(rate * duration))
    interval = 1.0 / rate
    started = loop.time()
    tasks = []
    try:
        for index in range(arrivals):
            scheduled = started + index * interval
            delay = scheduled - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(
                    _open_loop_arrival(
                        pool[index % pool_size],
                        objects[index % len(objects)],
                        scheduled,
                        ops_per_txn,
                        latencies,
                        counters,
                    )
                )
            )
        committed = sum(await asyncio.gather(*tasks))
        elapsed = loop.time() - started
    finally:
        for client in pool:
            await client.aclose()
    return {
        "offered_txn_per_second": rate,
        "pool": pool_size,
        "offered": arrivals,
        "committed": committed,
        "errors": dict(sorted(counters.items())),
        "stats": _txn_stats(latencies, elapsed),
    }


async def _run(
    smoke: bool,
    workers: int,
    queue_limit: int,
    duration: float,
    trace_path: Path,
    profile_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    registry = MetricsRegistry()
    bus = TraceBus()
    sink = bus.subscribe(JSONLSink(str(trace_path)))
    bus.subscribe(RegistrySink(registry, latency_buckets=WIRE_LATENCY_BUCKETS))
    profiler = SamplingProfiler() if profile_dir is not None else None
    # Always-on flight recorder: the drain trigger guarantees at least
    # one dump per run, so a failed CI run always has a replayable
    # snapshot to upload next to the full trace.
    flight = bus.subscribe(
        FlightRecorder(
            str(trace_path.parent / "flight"), emit_to=bus, profiler=profiler
        )
    )
    server = ReproServer(
        workers=workers,
        queue_limit=queue_limit,
        tracer=bus,
        drain_grace=2.0,
        flush_on_drain=[sink],
        registry=registry,
        flight=flight,
        profiler=profiler,
    )
    host, port = await server.start()

    client_levels = SMOKE_CLOSED_LOOP_CLIENTS if smoke else CLOSED_LOOP_CLIENTS
    rate_levels = SMOKE_OPEN_LOOP_RATES if smoke else OPEN_LOOP_RATES
    object_count = max(client_levels)
    objects = [f"acct-{index}" for index in range(object_count)]
    hot_object = "acct-hot"
    for name in objects + [hot_object]:
        server.create_object(name, ADT_NAME)
    # Seed the hot account so the concurrent debits always take the Ok
    # outcome (DEBIT_LOCK), the pair the contention profiler measures.
    hot_manager = server.managers[shard_for(hot_object, workers)]
    seed = hot_manager.begin("bench-seed")
    hot_manager.invoke(seed, hot_object, "Credit", HOT_SEED_BALANCE)
    hot_manager.commit(seed)

    closed_loop = []
    for clients in client_levels:
        closed_loop.append(
            await _closed_loop_level(
                host, port, clients, objects, hot_object, duration, OPS_PER_TXN
            )
        )
    open_loop = []
    for rate in rate_levels:
        open_loop.append(
            await _open_loop_level(
                host, port, rate, duration, min(16, object_count),
                objects, OPS_PER_TXN,
            )
        )

    drain = await server.drain()

    checker = AtomicityChecker()
    events = read_jsonl(str(trace_path))
    checker.replay(events)
    report = checker.report()

    # End-to-end span breakdown: replay the same trace through the span
    # builder so the artifact records where a committed transaction's
    # wall time went (client wire vs shard queue vs machine execution).
    builder = SpanBuilder()
    for event in events:
        builder(event)
    committed_spans = builder.committed()
    median_phase_ms: Dict[str, Optional[float]] = {}
    for phase in ("client", "queue", "execute", "respond"):
        values = [
            span.phases[phase]
            for span in committed_spans
            if phase in span.phases
        ]
        median_phase_ms[phase] = (
            statistics.median(values) * 1e3 if values else None
        )
    span_breakdown = {
        "committed_spans": len(committed_spans),
        "with_trace": sum(
            1 for span in committed_spans if span.trace is not None
        ),
        "median_phase_ms": median_phase_ms,
    }

    # Phase-budget attribution (milliseconds) over the committed spans,
    # and blocked time attributed per conflict pair — both from the same
    # replayed trace, so they describe exactly the certified run.
    critical = critical_path(committed_spans, scale=1e3)
    contention = contention_profile(events)
    if profile_dir is not None:
        write_profile(
            str(profile_dir),
            profiler=profiler,
            critical=critical,
            contention=contention,
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "adt": ADT_NAME,
        "config": {
            "workers": workers,
            "queue_limit": queue_limit,
            "objects": object_count + 1,
            "ops_per_txn": OPS_PER_TXN,
            "duration_seconds": duration,
        },
        "max_concurrent_clients": max(client_levels),
        "closed_loop": closed_loop,
        "open_loop": open_loop,
        "server": dict(server.stats),
        "drain": drain,
        "span_breakdown": span_breakdown,
        "critical_path": critical,
        "contention": contention,
        "flight": flight.status(),
        "certification": {
            "verdict": report["verdict"],
            "ok": report["ok"],
            "events": report["events"],
            "transactions": report["transactions"],
            "violations": report["violations"],
        },
    }


def run_serve_bench(
    smoke: bool = False,
    workers: int = 2,
    queue_limit: int = 64,
    duration: Optional[float] = None,
    output_dir: Path = REPO_ROOT,
    trace_path: Optional[Path] = None,
    profile_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run the serving benchmark; writes and returns ``BENCH_serve.json``.

    The trace the server emitted is left at ``trace_path`` (default:
    ``serve_trace.jsonl`` next to the artifact) so ``repro check
    --trace-file`` can re-certify the same run out of band.  With
    ``profile_dir`` set, the wall-clock sampler runs for the whole
    serve window and ``profile.folded`` / ``profile.json`` (sampler
    stacks + critical-path + contention reports) land there for
    ``repro profile``.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    if trace_path is None:
        trace_path = output_dir / "serve_trace.jsonl"
    if duration is None:
        duration = 0.6 if smoke else 3.0
    result = asyncio.run(
        _run(
            smoke,
            workers,
            queue_limit,
            duration,
            Path(trace_path),
            Path(profile_dir) if profile_dir is not None else None,
        )
    )
    if not result["certification"]["ok"]:
        raise AssertionError(
            f"served run failed certification: {result['certification']}"
        )
    floor = max(
        SMOKE_CLOSED_LOOP_CLIENTS if smoke else CLOSED_LOOP_CLIENTS
    )
    top = next(
        row for row in result["closed_loop"] if row["clients"] == floor
    )
    if top["committed"] <= 0:
        raise AssertionError(
            f"no transactions committed at {floor} concurrent clients"
        )
    (output_dir / "BENCH_serve.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    return result


def render_summary(result: Dict[str, Any]) -> str:
    """A terminal-friendly digest of one ``BENCH_serve.json`` payload."""
    lines = [
        f"serve bench: {result['config']['workers']} worker(s), "
        f"queue limit {result['config']['queue_limit']}, "
        f"{result['config']['objects']} objects"
    ]
    lines.append("closed loop (clients: txn/s, p50/p99 ms):")
    for row in result["closed_loop"]:
        stats = row["stats"]
        lines.append(
            f"  {row['clients']:>4}: {stats['txn_per_second']:>9,.0f} txn/s"
            f"  p50 {stats['p50_latency_ms']:>7.2f}  p99"
            f" {stats['p99_latency_ms']:>7.2f}"
            + (f"  errors {row['errors']}" if row["errors"] else "")
        )
    lines.append("open loop (offered: achieved txn/s, p50/p99 ms):")
    for row in result["open_loop"]:
        stats = row["stats"]
        lines.append(
            f"  {row['offered_txn_per_second']:>7,.0f}: "
            f"{stats['txn_per_second']:>9,.0f} txn/s"
            f"  p50 {stats['p50_latency_ms']:>7.2f}  p99"
            f" {stats['p99_latency_ms']:>7.2f}"
        )
    cert = result["certification"]
    lines.append(
        f"certification: {cert['verdict']!r} over {cert['events']} events, "
        f"{cert['transactions']['committed']} committed /"
        f" {cert['transactions']['aborted']} aborted"
    )
    drain = result["drain"]
    lines.append(
        f"drain: {drain['sessions']} session(s), {drain['aborted']} force-aborted"
    )
    breakdown = result.get("span_breakdown")
    if breakdown:
        medians = breakdown["median_phase_ms"]
        rendered = "  ".join(
            f"{phase} {value:.3f}ms"
            for phase, value in medians.items()
            if value is not None
        )
        lines.append(
            f"span breakdown ({breakdown['committed_spans']} committed, "
            f"{breakdown['with_trace']} traced): {rendered}"
        )
    critical = result.get("critical_path")
    if critical and critical.get("spans"):
        gating = critical.get("gating") or {}
        ranked = sorted(gating.items(), key=lambda item: (-item[1], item[0]))
        lines.append(
            f"critical path ({100.0 * critical['attributed_fraction']:.1f}% "
            "attributed): "
            + "  ".join(f"{phase} x{count}" for phase, count in ranked)
        )
    contention = result.get("contention")
    if contention:
        lines.append(
            f"contention: {contention['events']} blocked event(s), "
            f"{contention['blocked_time'] * 1e3:.1f}ms across "
            f"{contention['pairs']} pair(s)"
        )
        for row in (contention.get("rows") or [])[:3]:
            lines.append(
                f"  {row['blocked_time'] * 1e3:>9.3f}ms  {row['object']}: "
                f"{row['pair']}  [{row['relation']}]"
            )
    flight = result.get("flight")
    if flight:
        lines.append(
            f"flight recorder: {flight['dumps']} dump(s), "
            f"{flight['dropped_events']} event(s) beyond window"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trajectory: headline numbers, history, and regression comparison
# ----------------------------------------------------------------------

#: Regression thresholds for ``repro bench compare``: a new run is a
#: regression when throughput drops more than 20% or p99 inflates more
#: than 50% against the old artifact at the same concurrency level.
THROUGHPUT_REGRESSION = 0.20
P99_REGRESSION = 0.50


def headline(result: Dict[str, Any]) -> Dict[str, Any]:
    """One run's headline numbers: peak-concurrency row + verdict."""
    top = max(result["closed_loop"], key=lambda row: row["clients"])
    stats = top["stats"]
    return {
        "smoke": result.get("smoke", False),
        "clients": top["clients"],
        "txn_per_second": stats["txn_per_second"],
        "p50_latency_ms": stats["p50_latency_ms"],
        "p99_latency_ms": stats["p99_latency_ms"],
        "committed": top["committed"],
        "verdict": result["certification"]["verdict"],
    }


def compare_artifacts(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, Any]:
    """Compare two ``BENCH_serve.json`` payloads; flags regressions.

    Returns ``{"ok": bool, "regressions": [...], "old": ..., "new": ...}``
    — ``ok`` is False when the new run's peak-concurrency throughput
    fell more than 20% or its p99 grew more than 50%.
    """
    old_line, new_line = headline(old), headline(new)
    regressions: List[str] = []
    old_tps, new_tps = old_line["txn_per_second"], new_line["txn_per_second"]
    if old_tps > 0 and new_tps < old_tps * (1.0 - THROUGHPUT_REGRESSION):
        regressions.append(
            f"throughput fell {100.0 * (1.0 - new_tps / old_tps):.1f}% "
            f"({old_tps:,.0f} -> {new_tps:,.0f} txn/s; "
            f"budget {100.0 * THROUGHPUT_REGRESSION:.0f}%)"
        )
    old_p99, new_p99 = old_line["p99_latency_ms"], new_line["p99_latency_ms"]
    if old_p99 > 0 and new_p99 > old_p99 * (1.0 + P99_REGRESSION):
        regressions.append(
            f"p99 inflated {100.0 * (new_p99 / old_p99 - 1.0):.1f}% "
            f"({old_p99:.2f}ms -> {new_p99:.2f}ms; "
            f"budget {100.0 * P99_REGRESSION:.0f}%)"
        )
    if old_line["clients"] != new_line["clients"]:
        regressions.append(
            f"incomparable concurrency levels: {old_line['clients']} vs "
            f"{new_line['clients']} clients"
        )
    return {
        "ok": not regressions,
        "regressions": regressions,
        "old": old_line,
        "new": new_line,
    }


def render_comparison(comparison: Dict[str, Any]) -> str:
    """Terminal rendering of a :func:`compare_artifacts` result."""
    old, new = comparison["old"], comparison["new"]
    lines = [
        f"old: {old['txn_per_second']:>9,.0f} txn/s  "
        f"p50 {old['p50_latency_ms']:>7.2f}ms  "
        f"p99 {old['p99_latency_ms']:>7.2f}ms  @ {old['clients']} clients",
        f"new: {new['txn_per_second']:>9,.0f} txn/s  "
        f"p50 {new['p50_latency_ms']:>7.2f}ms  "
        f"p99 {new['p99_latency_ms']:>7.2f}ms  @ {new['clients']} clients",
    ]
    for regression in comparison["regressions"]:
        lines.append(f"REGRESSION: {regression}")
    if comparison["ok"]:
        lines.append("ok: within regression budgets")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--output-dir", default=str(REPO_ROOT))
    parser.add_argument("--profile-dir", default=None)
    args = parser.parse_args(argv)
    result = run_serve_bench(
        smoke=args.smoke,
        workers=args.workers,
        queue_limit=args.queue_limit,
        duration=args.duration,
        output_dir=Path(args.output_dir),
        profile_dir=Path(args.profile_dir) if args.profile_dir else None,
    )
    print(render_summary(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
