"""Client library for the serving tier: sync and asyncio variants.

Both clients speak the length-prefixed protocol of
:mod:`repro.server.protocol` and correlate responses by request id —
necessary because the server answers cheap bookkeeping requests
(``ping``, ``begin``) inline while queued work (``invoke``, ``commit``)
flows through a worker, so responses can legally overtake each other on
one connection.

Idempotent completion retry
---------------------------

``commit``/``abort`` accept an explicit ``request_id``.  Reusing the id
of an unacknowledged completion *replays the server's cached decision*
instead of re-executing it — the wire-level answer to "the commit ack
was lost; did my transaction commit?".  :meth:`SyncClient.commit` mints
the id up front and reuses it across its own retransmits for exactly
this reason.

Trace propagation
-----------------

Every request is stamped with a ``trace`` context: a client-minted
trace id (``c<client>-<seq>``) and the ``time.monotonic()`` send
timestamp.  A transaction's requests all reuse the trace id minted at
``begin``, so the server-side ``server.*`` events — and the end-to-end
span the :class:`~repro.obs.SpanBuilder` assembles from them — name one
id for the whole client call chain.  The ``sent`` timestamp is only
comparable with the server's clock when both ends share
``CLOCK_MONOTONIC`` (same machine — the bench and test topology);
cross-host deployments should read the ``client`` span phase as
approximate.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from typing import Any, Dict, Optional, Tuple

from .protocol import (
    FrameDecoder,
    Response,
    WireError,
    parse_response,
    request_frame,
)

__all__ = ["SyncClient", "AsyncClient"]

#: Process-wide client numbering, so concurrent clients (the bench's
#: closed-loop threads) mint disjoint trace-id spaces.
_CLIENT_IDS = itertools.count(1)


class _TraceMinter:
    """Per-client trace ids plus the handle→trace binding for reuse."""

    def __init__(self) -> None:
        self._prefix = f"c{next(_CLIENT_IDS)}"
        self._seq = itertools.count(1)
        #: transaction handle -> the trace id minted at its ``begin``.
        self.by_txn: Dict[str, str] = {}

    def mint(self) -> str:
        return f"{self._prefix}-{next(self._seq)}"

    def context(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """The wire ``trace`` object (mints a fresh id when not given)."""
        return {
            "id": trace_id if trace_id is not None else self.mint(),
            "sent": time.monotonic(),
        }


class SyncClient:
    """A blocking client for scripts, tests, and the closed-loop bench.

    Not thread-safe; one instance per thread.  Responses are matched by
    request id, so a slow queued operation never corrupts the reply of a
    fast inline one.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        self._pending: Dict[int, Response] = {}
        self._traces = _TraceMinter()
        self.closed = False

    # -- low-level -----------------------------------------------------

    def next_id(self) -> int:
        """Mint a fresh request id (mint one yourself to retry a commit)."""
        return next(self._ids)

    def send(self, action: str, params: Optional[Dict[str, Any]] = None,
             request_id: Optional[int] = None,
             trace_id: Optional[str] = None) -> int:
        """Transmit one request; returns the id to wait on.

        Every request carries a trace context; ``trace_id`` reuses an
        existing id (a transaction's), else a fresh one is minted.
        """
        if request_id is None:
            request_id = self.next_id()
        self._sock.sendall(
            request_frame(
                request_id, action, params, self._traces.context(trace_id)
            )
        )
        return request_id

    def wait(self, request_id: int) -> Response:
        """Block until the response for ``request_id`` arrives."""
        while True:
            response = self._pending.pop(request_id, None)
            if response is not None:
                return response
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for body in self._decoder.feed(data):
                response = parse_response(body)
                self._pending[response.id] = response

    def call(self, action: str, params: Optional[Dict[str, Any]] = None,
             request_id: Optional[int] = None,
             trace_id: Optional[str] = None) -> Response:
        """Send one request and block for its (possibly error) response."""
        return self.wait(self.send(action, params, request_id, trace_id))

    # -- protocol verbs ------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Round-trip a ping; returns the server's status result."""
        return dict(self.call("ping").raise_for_error().result)

    def stats(self) -> Dict[str, Any]:
        """The server's live introspection snapshot (in-band ``stats``)."""
        return dict(self.call("stats").raise_for_error().result)

    def health(self) -> Dict[str, Any]:
        """The server's liveness summary (in-band ``health``)."""
        return dict(self.call("health").raise_for_error().result)

    def create(self, name: str, adt: str, protocol: Optional[str] = None) -> int:
        """Create ``name`` as an instance of ``adt``; returns its shard."""
        params: Dict[str, Any] = {"name": name, "adt": adt}
        if protocol:
            params["protocol"] = protocol
        return self.call("create", params).raise_for_error().result["worker"]

    def begin(self) -> str:
        """Open a transaction; returns its handle.

        The trace id minted here is reused for every later request of
        the same transaction, so the whole chain shares one trace.
        """
        trace_id = self._traces.mint()
        handle = (
            self.call("begin", trace_id=trace_id)
            .raise_for_error()
            .result["transaction"]
        )
        self._traces.by_txn[handle] = trace_id
        return handle

    def invoke(self, transaction: str, obj: str, operation: str, *args: Any) -> Any:
        """Invoke one ADT operation inside ``transaction``."""
        response = self.call(
            "invoke",
            {
                "transaction": transaction,
                "obj": obj,
                "operation": operation,
                "args": tuple(args),
            },
            trace_id=self._traces.by_txn.get(transaction),
        )
        return response.raise_for_error().result["result"]

    def commit(
        self, transaction: str, request_id: Optional[int] = None, retries: int = 3
    ) -> Any:
        """Commit; returns the commit timestamp (None for an empty txn).

        The request id is minted once and reused across retransmits, so
        a commit whose ack was lost is *replayed*, never re-decided.
        """
        if request_id is None:
            request_id = self.next_id()
        trace_id = self._traces.by_txn.get(transaction)
        last: Optional[WireError] = None
        for _attempt in range(max(1, retries)):
            try:
                response = self.call(
                    "commit", {"transaction": transaction}, request_id, trace_id
                )
            except ConnectionError:
                raise
            try:
                timestamp = response.raise_for_error().result["timestamp"]
            except WireError as exc:
                if exc.code != "BUSY":
                    self._traces.by_txn.pop(transaction, None)
                    raise
                last = exc
            else:
                self._traces.by_txn.pop(transaction, None)
                return timestamp
        raise last  # type: ignore[misc]

    def abort(self, transaction: str, request_id: Optional[int] = None) -> None:
        """Abort ``transaction`` (idempotent under request-id reuse)."""
        trace_id = self._traces.by_txn.pop(transaction, None)
        self.call(
            "abort", {"transaction": transaction}, request_id, trace_id
        ).raise_for_error()

    def close(self) -> None:
        """Close the socket (any open transactions are server-aborted)."""
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "SyncClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


class AsyncClient:
    """An asyncio client; safe for many in-flight requests at once.

    A background reader task resolves one future per request id, so any
    number of coroutines can share a single connection — the shape the
    open-loop load generator needs.
    """

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        self._futures: Dict[int, "asyncio.Future[Response]"] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._traces = _TraceMinter()
        self.closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncClient":
        """Open a connection and start the response-reader task."""
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for body in self._decoder.feed(data):
                    response = parse_response(body)
                    future = self._futures.pop(response.id, None)
                    if future is not None and not future.done():
                        future.set_result(response)
        except (ConnectionError, OSError, WireError) as exc:
            self._fail_pending(exc)
            return
        self._fail_pending(ConnectionError("server closed the connection"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._futures.values():
            if not future.done():
                future.set_exception(exc)
        self._futures.clear()

    def next_id(self) -> int:
        """Mint a fresh request id."""
        return next(self._ids)

    async def call(
        self,
        action: str,
        params: Optional[Dict[str, Any]] = None,
        request_id: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> Response:
        """Send one request and await its (possibly error) response."""
        if self._writer is None:
            raise ConnectionError("not connected")
        if request_id is None:
            request_id = self.next_id()
        future: "asyncio.Future[Response]" = (
            asyncio.get_event_loop().create_future()
        )
        self._futures[request_id] = future
        self._writer.write(
            request_frame(
                request_id, action, params, self._traces.context(trace_id)
            )
        )
        await self._writer.drain()
        return await future

    # -- protocol verbs ------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        """Round-trip a ping; returns the server's status result."""
        return dict((await self.call("ping")).raise_for_error().result)

    async def stats(self) -> Dict[str, Any]:
        """The server's live introspection snapshot (in-band ``stats``)."""
        return dict((await self.call("stats")).raise_for_error().result)

    async def health(self) -> Dict[str, Any]:
        """The server's liveness summary (in-band ``health``)."""
        return dict((await self.call("health")).raise_for_error().result)

    async def create(
        self, name: str, adt: str, protocol: Optional[str] = None
    ) -> int:
        """Create ``name`` as an instance of ``adt``; returns its shard."""
        params: Dict[str, Any] = {"name": name, "adt": adt}
        if protocol:
            params["protocol"] = protocol
        response = await self.call("create", params)
        return response.raise_for_error().result["worker"]

    async def begin(self) -> str:
        """Open a transaction; returns its handle (trace id reused)."""
        trace_id = self._traces.mint()
        response = await self.call("begin", trace_id=trace_id)
        handle = response.raise_for_error().result["transaction"]
        self._traces.by_txn[handle] = trace_id
        return handle

    async def invoke(
        self, transaction: str, obj: str, operation: str, *args: Any
    ) -> Any:
        """Invoke one ADT operation inside ``transaction``."""
        response = await self.call(
            "invoke",
            {
                "transaction": transaction,
                "obj": obj,
                "operation": operation,
                "args": tuple(args),
            },
            trace_id=self._traces.by_txn.get(transaction),
        )
        return response.raise_for_error().result["result"]

    async def commit(
        self, transaction: str, request_id: Optional[int] = None
    ) -> Tuple[Any, Response]:
        """Commit; returns ``(timestamp, response)``.

        Pass the same ``request_id`` again to retry an unacknowledged
        commit: the server replays its cached decision.
        """
        trace_id = self._traces.by_txn.get(transaction)
        response = await self.call(
            "commit", {"transaction": transaction}, request_id, trace_id
        )
        response.raise_for_error()
        self._traces.by_txn.pop(transaction, None)
        return response.result["timestamp"], response

    async def abort(
        self, transaction: str, request_id: Optional[int] = None
    ) -> None:
        """Abort ``transaction`` (idempotent under request-id reuse)."""
        trace_id = self._traces.by_txn.pop(transaction, None)
        (
            await self.call(
                "abort", {"transaction": transaction}, request_id, trace_id
            )
        ).raise_for_error()

    async def aclose(self) -> None:
        """Close the connection and stop the reader task."""
        if self.closed:
            return
        self.closed = True
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, RuntimeError, OSError):
                pass
        if self._reader_task is not None:
            try:
                await self._reader_task
            except (ConnectionError, OSError):
                pass
