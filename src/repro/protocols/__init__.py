"""Concurrency-control protocols: hybrid plus the paper's baselines."""

from .base import (
    ALL_PROTOCOLS,
    COMMUTATIVITY,
    HYBRID,
    OPTIMISTIC,
    SERIAL,
    TWO_PHASE_RW,
    ProtocolSpec,
    get_protocol,
)

__all__ = [
    "ProtocolSpec",
    "HYBRID",
    "COMMUTATIVITY",
    "TWO_PHASE_RW",
    "SERIAL",
    "OPTIMISTIC",
    "ALL_PROTOCOLS",
    "get_protocol",
]
