"""Concurrency-control protocol descriptors.

All the protocols compared in the paper share the LOCK machine's shape —
view construction, predicate locks, intentions, commit-time merging — and
differ only in *which conflict relation* governs lock refusal.  This is the
paper's "upward compatibility" observation (Section 1): any conflict
relation that contains a symmetric dependency relation still yields hybrid
atomic behaviour, because dependency relations are upward closed.  A
protocol here is therefore a named rule mapping an ADT to its conflict
relation.

The three protocols of the paper's comparison:

* :data:`HYBRID` — the paper's contribution: the symmetric closure of a
  minimal dependency relation (Sections 4-5).
* :data:`COMMUTATIVITY` — classic type-specific locking (Weihl, Korth,
  Bernstein et al., Section 7.1): failure-to-commute conflicts.  Strictly
  more restrictive than hybrid on types like Account, equal on types like
  SemiQueue.
* :data:`TWO_PHASE_RW` — untyped strict two-phase locking (Eswaran et
  al.): every operation is a read or a write; only read/read pairs are
  compatible.
* :data:`SERIAL` — the degenerate protocol where everything conflicts;
  a lower-bound yardstick for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..adts.base import ADT
from ..core.conflict import TOTAL_RELATION, Relation

__all__ = [
    "ProtocolSpec",
    "HYBRID",
    "COMMUTATIVITY",
    "TWO_PHASE_RW",
    "SERIAL",
    "ALL_PROTOCOLS",
    "get_protocol",
]


@dataclass(frozen=True)
class ProtocolSpec:
    """A named concurrency-control discipline.

    ``conflict_for(adt)`` returns the lock-conflict relation the discipline
    uses for the given type.  For correctness (hybrid atomicity) the
    returned relation must contain a symmetric dependency relation for the
    type's serial specification — true for all four built-ins.
    """

    name: str
    description: str
    conflict_for: Callable[[ADT], Relation]
    #: Execution engine: "locking" runs on the LOCK machine; "optimistic"
    #: runs on the validation-based runtime (conflict_for then supplies
    #: the dependency relation used for fast-path validation).
    engine: str = "locking"

    def __str__(self) -> str:
        return self.name


HYBRID = ProtocolSpec(
    name="hybrid",
    description=(
        "The paper's protocol: lock conflicts are the symmetric closure of "
        "a minimal dependency relation derived from the type specification."
    ),
    conflict_for=lambda adt: adt.conflict,
)

COMMUTATIVITY = ProtocolSpec(
    name="commutativity",
    description=(
        "Commutativity-based type-specific locking: operations that fail "
        "to commute conflict (Weihl's dynamic atomic scheme)."
    ),
    conflict_for=lambda adt: adt.commutativity_conflict,
)

TWO_PHASE_RW = ProtocolSpec(
    name="rw-2pl",
    description=(
        "Untyped strict two-phase locking: read locks are shared, "
        "everything else is exclusive."
    ),
    conflict_for=lambda adt: adt.rw_conflict(),
)

SERIAL = ProtocolSpec(
    name="serial",
    description="Every pair of operations conflicts (serial execution).",
    conflict_for=lambda adt: TOTAL_RELATION,
)

OPTIMISTIC = ProtocolSpec(
    name="optimistic",
    description=(
        "Type-specific optimistic concurrency control: execute without "
        "locks, certify at commit with the dependency relation (fast "
        "path) or replay (slow path)."
    ),
    conflict_for=lambda adt: adt.dependency,
    engine="optimistic",
)

#: The locking protocols compared by the benchmark suite, most to least
#: permissive.  OPTIMISTIC is kept separate: it is an engine comparison,
#: not a conflict-table comparison.
ALL_PROTOCOLS: List[ProtocolSpec] = [HYBRID, COMMUTATIVITY, TWO_PHASE_RW, SERIAL]

_BY_NAME: Dict[str, ProtocolSpec] = {
    p.name: p for p in ALL_PROTOCOLS + [OPTIMISTIC]
}


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a built-in protocol by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(sorted(_BY_NAME))}"
        ) from None
